//! Angel: SendModel over parameter servers with **per-epoch**
//! communication and per-batch gradient descent.
//!
//! The paper (Section III-B2): "Workers in Angel communicate with the
//! parameter servers per epoch... Angel always performs gradient descent
//! on each batch." And (Section V-B2): "Angel stores the accumulated
//! gradients for each batch in a separate vector. For each batch, we need
//! to allocate memory for the vector and collect it back. When the batch
//! size is small... there will be significant overhead on memory
//! allocation and garbage collection." Both behaviours are modeled here:
//! one clock tick = one local epoch of per-batch GD steps, plus a fixed
//! allocation/GC overhead *per batch*.

use std::cell::Cell;
use std::rc::Rc;

use mlstar_data::{EpochOrder, Partitioner, SparseDataset};
use mlstar_glm::{mgd_step, LearningRate, Loss, Regularizer};
use mlstar_linalg::DenseVector;
use mlstar_ps::{Aggregation, Consistency, PsConfig, PsEngine, WorkerLogic, WorkerStep};
use mlstar_sim::{dense_op_flops, pass_flops, ClusterSpec, CostModel, SeedStream, SimDuration};

use crate::checkpoint::{CheckpointError, PsCkptHook, PsCkptRun};
use crate::common::partition_active_coords;
use crate::engine::{assemble_output, ps_round_stats, ClockTracer};
use crate::{AngelConfig, TrainConfig, TrainOutput};

/// The Angel worker-local computation: one epoch of per-batch GD.
struct AngelWorker<'a> {
    ds: &'a SparseDataset,
    parts: Vec<Vec<usize>>,
    part_nnz: Vec<usize>,
    /// Distinct features per partition (sparse pull/push volume).
    part_active: Vec<usize>,
    sparse_messages: bool,
    orders: Vec<EpochOrder>,
    counters: Vec<u64>,
    loss: Loss,
    reg: Regularizer,
    lr: LearningRate,
    batch_frac: f64,
    alloc_per_batch: SimDuration,
    updates: Rc<Cell<u64>>,
    grad_buf: DenseVector,
}

impl WorkerLogic for AngelWorker<'_> {
    fn compute(&mut self, worker: usize, _clock: u64, model: &DenseVector) -> WorkerStep {
        let dim = model.dim();
        let part = &self.parts[worker];
        if part.is_empty() {
            return WorkerStep {
                payload_bytes: None,
                payload: DenseVector::zeros(dim),
                flops: 0.0,
                extra_overhead: SimDuration::ZERO,
                local_updates: 0,
            };
        }
        let batch_size =
            ((part.len() as f64 * self.batch_frac).round() as usize).clamp(1, part.len());
        let order = self.orders[worker].next_order(part);

        let (w, n_batches) = if crate::exec::backend_active() {
            // The worker replays the same chunked mgd_step loop (it holds
            // the learning-rate schedule from its assignment); the
            // returned counter is t0 + #chunks, mirrored here.
            let n_chunks = order.chunks(batch_size).count() as u64;
            let res = crate::exec::dispatch(vec![(
                worker,
                crate::exec::WorkerOp::MgdEpoch {
                    w: model.clone(),
                    order: crate::exec::to_wire_indices(&order),
                    batch_size: batch_size as u32,
                    t0: self.counters[worker],
                },
            )]);
            let (w, t) = crate::exec::expect_model(crate::exec::expect_single(res));
            debug_assert_eq!(t, self.counters[worker] + n_chunks);
            self.counters[worker] = t;
            (w, n_chunks)
        } else {
            let mut w = model.clone();
            let mut n_batches = 0u64;
            for chunk in order.chunks(batch_size) {
                let eta = self.lr.eta(self.counters[worker]);
                mgd_step(
                    self.loss,
                    self.reg,
                    &mut w,
                    self.ds.rows(),
                    self.ds.labels(),
                    chunk,
                    eta,
                    &mut self.grad_buf,
                );
                self.counters[worker] += 1;
                n_batches += 1;
            }
            (w, n_batches)
        };

        // Push the accumulated delta; Angel's servers sum worker updates.
        // Without a regularizer the epoch's delta touches only the
        // partition's active coordinates, and the push is sized from the
        // *actual* delta's encoded sparse frame rather than that guess.
        let payload_bytes = if self.sparse_messages && self.reg.is_none() {
            mlstar_glm::sparse_delta(&w, model)
                .ok()
                .map(|d| mlstar_collectives::wire::encoded_sparse_len(d.nnz()))
        } else {
            None
        };
        let mut delta = w;
        delta.axpy(-1.0, model);
        self.updates.set(self.updates.get() + n_batches);
        WorkerStep {
            payload_bytes,
            payload: delta,
            // Sparse gradient work for the whole pass plus a dense
            // gradient-apply per batch.
            flops: pass_flops(self.part_nnz[worker]) + 2.0 * dense_op_flops(dim) * n_batches as f64,
            // The modeled allocation/GC cost: one fresh gradient vector
            // per batch.
            extra_overhead: self.alloc_per_batch.mul_f64(n_batches as f64),
            local_updates: n_batches,
        }
    }

    fn pull_bytes(&self, worker: usize) -> Option<usize> {
        if self.sparse_messages {
            // A pull of only the partition's active coordinates travels as
            // a sparse frame; the engine clamps it to the dense model size.
            Some(mlstar_collectives::wire::encoded_sparse_len(
                self.part_active[worker],
            ))
        } else {
            None
        }
    }
}

/// Trains with Angel (per-epoch PS communication, per-batch GD, summation).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn train_angel(
    ds: &SparseDataset,
    cluster: &ClusterSpec,
    cfg: &TrainConfig,
    angel: &AngelConfig,
) -> TrainOutput {
    match train_angel_ckpt(ds, cluster, cfg, angel, None) {
        Ok(out) => out,
        // Without a checkpoint run there is no I/O and no anchor to miss.
        Err(e) => panic!("checkpoint-free run cannot fail: {e}"),
    }
}

/// [`train_angel`] with optional anchor checkpointing and replay
/// verification (see [`PsCkptHook`](crate::checkpoint::PsCkptHook)).
pub(crate) fn train_angel_ckpt(
    ds: &SparseDataset,
    cluster: &ClusterSpec,
    cfg: &TrainConfig,
    angel: &AngelConfig,
    ckpt: Option<PsCkptRun<'_>>,
) -> Result<TrainOutput, CheckpointError> {
    assert!(!ds.is_empty(), "cannot train on an empty dataset");
    let validation = cfg.validate();
    assert!(validation.is_ok(), "invalid TrainConfig: {validation:?}");
    let k = cluster.num_executors();
    let dim = ds.num_features();
    let seeds = SeedStream::new(cfg.seed);
    let parts = Partitioner::Shuffled {
        seed: seeds.child("partition").seed(),
    }
    .partition(ds.len(), k);
    let part_nnz: Vec<usize> = parts
        .iter()
        .map(|p| p.iter().map(|&i| ds.rows()[i].nnz()).sum())
        .collect();
    let part_active = partition_active_coords(ds, &parts);
    let updates = Rc::new(Cell::new(0u64));
    let alloc_per_batch = SimDuration::from_secs_f64((dim * 8) as f64 / angel.alloc_bandwidth_bps);
    let mut logic = AngelWorker {
        ds,
        parts,
        part_nnz,
        part_active,
        sparse_messages: angel.sparse_messages,
        orders: (0..k)
            .map(|r| EpochOrder::new(seeds.child("epoch").child_idx(r as u64).seed()))
            .collect(),
        counters: vec![0; k],
        loss: cfg.loss,
        reg: cfg.reg,
        lr: cfg.lr,
        batch_frac: cfg.batch_frac,
        alloc_per_batch,
        updates: Rc::clone(&updates),
        grad_buf: DenseVector::zeros(dim),
    };

    let cost = CostModel::new(cluster.clone());
    let mut engine = PsEngine::new(
        &cost,
        PsConfig {
            num_servers: angel.num_servers,
            consistency: if angel.staleness == 0 {
                Consistency::Bsp
            } else {
                Consistency::Ssp {
                    staleness: angel.staleness,
                }
            },
            aggregation: Aggregation::Sum,
            max_clocks: cfg.max_rounds,
            tick_overhead: SimDuration::from_millis(2),
            seed: seeds.child("ps").seed(),
        },
    );

    let mut tracer = ClockTracer::new(ds, cfg, "Angel", Rc::clone(&updates));
    let mut hook = PsCkptHook::new(ds, cfg, ckpt);
    let (final_model, stats) = engine.run(DenseVector::zeros(dim), &mut logic, |clock, time, m| {
        hook.on_clock(&mut tracer, clock, time, m, updates.get())
    });
    hook.finish()?;

    Ok(assemble_output(
        tracer.trace,
        engine.gantt().clone(),
        final_model,
        updates.get(),
        stats.clock_times.len() as u64,
        tracer.converged,
        ps_round_stats(&stats, k),
        1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlstar_data::SyntheticConfig;
    use mlstar_glm::LearningRate;

    fn tiny_ds() -> SparseDataset {
        let mut cfg = SyntheticConfig::small("angel-test", 240, 30);
        cfg.margin_noise = 0.05;
        cfg.flip_prob = 0.0;
        cfg.generate()
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            // Angel's servers SUM k workers' deltas, so the stable
            // per-worker rate is ~1/k of the averaging systems'.
            lr: LearningRate::Constant(0.05 / 8.0),
            batch_frac: 0.2,
            max_rounds: 15,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn converges() {
        let ds = tiny_ds();
        let out = train_angel(
            &ds,
            &ClusterSpec::cluster1(),
            &quick_cfg(),
            &AngelConfig::default(),
        );
        let first = out.trace.points.first().unwrap().objective;
        let best = out.trace.best_objective().unwrap();
        assert!(best < first * 0.7, "{first} → {best}");
    }

    #[test]
    fn one_clock_is_one_epoch_of_batches() {
        let ds = tiny_ds();
        let cfg = TrainConfig {
            max_rounds: 4,
            ..quick_cfg()
        };
        let out = train_angel(
            &ds,
            &ClusterSpec::cluster1(),
            &cfg,
            &AngelConfig {
                staleness: 0,
                ..AngelConfig::default()
            },
        );
        // 240 rows / 8 workers = 30 rows per worker; batch 20% of 30 = 6
        // rows → 5 batches per epoch per worker.
        assert_eq!(out.total_updates, 8 * 5 * 4);
    }

    #[test]
    fn small_batches_cost_allocation_overhead() {
        // The paper's explanation for Angel's small-batch weakness: the
        // per-batch allocation overhead should make a small-batch epoch
        // slower in simulated time even though the math work is the same.
        let ds = tiny_ds();
        let run = |frac: f64, alloc_bps: f64| {
            let cfg = TrainConfig {
                batch_frac: frac,
                max_rounds: 3,
                ..quick_cfg()
            };
            let angel = AngelConfig {
                alloc_bandwidth_bps: alloc_bps,
                ..AngelConfig::default()
            };
            let out = train_angel(&ds, &ClusterSpec::cluster1(), &cfg, &angel);
            out.trace.points.last().unwrap().time.as_secs_f64()
        };
        // Tiny batches → many allocations; slow allocator amplifies it.
        let small_batches = run(0.02, 1e6);
        let large_batches = run(0.5, 1e6);
        assert!(
            small_batches > large_batches,
            "per-batch alloc overhead: small {small_batches}s vs large {large_batches}s"
        );
    }

    #[test]
    fn trace_time_advances() {
        let ds = tiny_ds();
        let out = train_angel(
            &ds,
            &ClusterSpec::cluster1(),
            &quick_cfg(),
            &AngelConfig::default(),
        );
        let times: Vec<f64> = out
            .trace
            .points
            .iter()
            .map(|p| p.time.as_secs_f64())
            .collect();
        for pair in times.windows(2) {
            assert!(pair[1] > pair[0], "time must advance: {times:?}");
        }
    }

    #[test]
    fn deterministic() {
        let ds = tiny_ds();
        let cfg = TrainConfig {
            max_rounds: 3,
            ..quick_cfg()
        };
        let a = train_angel(&ds, &ClusterSpec::cluster1(), &cfg, &AngelConfig::default());
        let b = train_angel(&ds, &ClusterSpec::cluster1(), &cfg, &AngelConfig::default());
        assert_eq!(a.trace, b.trace);
    }
}
