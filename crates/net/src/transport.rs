//! Byte-frame transports between the orchestrator and its workers.
//!
//! A [`Transport`] moves whole codec frames (the 24-byte
//! `mlstar-codec` envelope plus payload) in both directions. Two
//! implementations share the trait:
//!
//! * [`ChannelTransport`] — `std::sync::mpsc` channels between threads of
//!   one process; frames arrive intact by construction.
//! * [`TcpTransport`] — a loopback TCP stream; frames are self-delimiting
//!   because the codec header carries the payload length at a fixed
//!   offset, so the receiver reads the header, then exactly the declared
//!   payload.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, Sender};

use mlstar_codec::HEADER_LEN;

use crate::error::NetError;

/// Upper bound on a single frame's payload (64 MiB). A header declaring
/// more is treated as corruption rather than an allocation request.
const MAX_PAYLOAD: u64 = 64 << 20;

/// A bidirectional, ordered, reliable frame pipe.
pub trait Transport: Send {
    /// Sends one complete frame.
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError>;
    /// Receives the next complete frame, blocking until it arrives.
    /// `Err` means the peer is gone — there is no partial read to retry.
    fn recv(&mut self) -> Result<Vec<u8>, NetError>;
}

/// In-process transport over a pair of mpsc channels.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Builds a connected orchestrator/worker endpoint pair.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (to_worker, from_orch) = std::sync::mpsc::channel();
    let (to_orch, from_worker) = std::sync::mpsc::channel();
    (
        ChannelTransport {
            tx: to_worker,
            rx: from_worker,
        },
        ChannelTransport {
            tx: to_orch,
            rx: from_orch,
        },
    )
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| NetError::Io("channel peer disconnected".into()))
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        self.rx
            .recv()
            .map_err(|_| NetError::Io("channel peer disconnected".into()))
    }
}

/// Loopback-TCP transport carrying the same frames as
/// [`ChannelTransport`].
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream. `NODELAY` is set so the small command
    /// frames of the protocol are not Nagle-delayed — per-message latency
    /// is one of the calibrated quantities.
    pub fn new(stream: TcpStream) -> Result<Self, NetError> {
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::Io(format!("set_nodelay: {e}")))?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.stream
            .write_all(frame)
            .map_err(|e| NetError::Io(format!("tcp write: {e}")))
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let mut frame = vec![0u8; HEADER_LEN];
        self.stream
            .read_exact(&mut frame)
            .map_err(|e| NetError::Io(format!("tcp read header: {e}")))?;
        // The codec envelope is `magic u32 | version u32 | payload_len
        // u64 | checksum u64`, little-endian; the length lives at bytes
        // 8..16.
        let payload_len = u64::from_le_bytes(
            frame[8..16]
                .try_into()
                // lint:allow(panic_in_lib): an 8-byte slice always
                // converts to [u8; 8].
                .expect("8-byte slice converts to [u8; 8]"),
        );
        if payload_len > MAX_PAYLOAD {
            return Err(NetError::Protocol(format!(
                "frame declares {payload_len} payload bytes (cap {MAX_PAYLOAD})"
            )));
        }
        let total = HEADER_LEN + payload_len as usize;
        frame.resize(total, 0);
        self.stream
            .read_exact(&mut frame[HEADER_LEN..])
            .map_err(|e| NetError::Io(format!("tcp read payload: {e}")))?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlstar_codec::encode_frame;

    #[test]
    fn channel_round_trips_frames() {
        let (mut orch, mut worker) = channel_pair();
        let frame = encode_frame(0x1234_5678, 1, b"hello");
        orch.send(&frame).unwrap();
        assert_eq!(worker.recv().unwrap(), frame);
        worker.send(&frame).unwrap();
        assert_eq!(orch.recv().unwrap(), frame);
    }

    #[test]
    fn channel_disconnect_is_an_error() {
        let (mut orch, worker) = channel_pair();
        drop(worker);
        assert!(orch.send(b"x").is_err());
        assert!(orch.recv().is_err());
    }
}
