//! Real-thread execution backend for the MLlib\* trainers.
//!
//! Every trainer in `mlstar-core` normally runs its per-worker math
//! inline under the simulated clock. This crate executes that same math
//! on real OS threads behind an orchestrator/worker command protocol
//! (framed on `mlstar-codec`, vector payloads via `collectives::wire`),
//! over either in-process channels or loopback TCP — while leaving the
//! trainer itself, its RNG streams, and the simulated timing machinery
//! untouched. The result: [`train_net`] produces a `TrainOutput` that is
//! **bit-for-bit identical** to the simulated run (traces, Gantt,
//! weights, telemetry), plus real measured wall-clock per worker per
//! round that `mlstar_sim`'s cost model can be calibrated against.
//!
//! # Determinism contract
//!
//! * All randomness stays on the orchestrating thread; workers receive
//!   explicit row-index lists.
//! * Workers execute the exact `mlstar-glm` call sequences of the inline
//!   path (see `core::WorkerOp`), over the same rows in the same order.
//! * `f64` survives the wire exactly (little-endian byte round-trip).
//! * Wall-clock is measured but never consulted: no timeout, retry, or
//!   scheduling decision depends on it.
//!
//! # Failure contract
//!
//! A worker that dies mid-run surfaces as
//! [`NetError::WorkerLost`] from [`train_net`] — the training unwind is
//! caught at the boundary, no partial `TrainOutput` is produced, and the
//! remaining workers are shut down before the call returns.
//!
//! # Example
//!
//! ```
//! use mlstar_core::{System, TrainConfig};
//! use mlstar_data::SyntheticConfig;
//! use mlstar_net::{train_net, NetConfig};
//! use mlstar_sim::ClusterSpec;
//!
//! let ds = SyntheticConfig::small("net-demo", 120, 16).generate();
//! let cluster = ClusterSpec::uniform(
//!     3,
//!     mlstar_sim::NodeSpec::standard(),
//!     mlstar_sim::NetworkSpec::gbps1(),
//! );
//! let cfg = TrainConfig { max_rounds: 3, ..TrainConfig::default() };
//! let run = train_net(
//!     System::MllibStar,
//!     &ds,
//!     &cluster,
//!     &cfg,
//!     &Default::default(),
//!     &Default::default(),
//!     &NetConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(run.output.rounds_run, 3);
//! assert!(run.wall_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod measure;
mod orchestrator;
mod pool;
mod protocol;
mod transport;
mod worker;

use std::cell::RefCell;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use mlstar_core::{
    system_partitions, with_backend, AngelConfig, ExecAbort, PsSystemConfig, System, TrainConfig,
    TrainOutput,
};
use mlstar_data::SparseDataset;
use mlstar_sim::ClusterSpec;

pub use error::NetError;
pub use orchestrator::{NetBatchStats, WorkerBatchStats};
pub use protocol::{decode_msg, encode_msg, AssignedRow, Msg, NET_MAGIC, NET_VERSION};
pub use transport::{channel_pair, ChannelTransport, TcpTransport, Transport};

use measure::Stopwatch;
use orchestrator::{Orchestrator, SharedFailure, SharedLinks, SharedStats};

/// Which transport carries the command protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// `std::sync::mpsc` channels between threads (default).
    Channel,
    /// Loopback TCP (`127.0.0.1`), one connection per worker.
    Tcp,
}

/// Fault injection: kill one worker right before it would answer a given
/// dispatch batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The dispatch batch at which the worker dies.
    pub batch: u64,
    /// The worker to kill.
    pub worker: usize,
}

/// Configuration of a net-backed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Transport selection.
    pub transport: TransportKind,
    /// Optional fault injection (tests).
    pub kill: Option<KillSpec>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            transport: TransportKind::Channel,
            kill: None,
        }
    }
}

/// A completed net-backed training run: the (bit-identical) simulated
/// output plus real measurements.
#[derive(Debug, Clone)]
pub struct NetTrainOutput {
    /// The trainer's output — identical to the simulated path's.
    pub output: TrainOutput,
    /// Per-dispatch-batch measurements, in dispatch order.
    pub batches: Vec<NetBatchStats>,
    /// Wall-clock seconds for the whole run (handshake to shutdown).
    pub wall_s: f64,
}

impl NetTrainOutput {
    /// Measured dispatch batches per second over the whole run.
    pub fn batches_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.batches.len() as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Trains `system` on real worker threads, returning the bit-identical
/// trainer output plus per-round wall-clock measurements.
///
/// `ps` and `angel` configure the parameter-server trainers exactly as in
/// [`System::train`]; BSP trainers ignore them.
///
/// # Errors
///
/// Returns a typed [`NetError`] if a worker dies mid-run, the handshake
/// fails, or a peer violates the protocol. No partial output escapes: the
/// error path shuts down surviving workers before returning.
#[allow(clippy::too_many_arguments)]
pub fn train_net(
    system: System,
    ds: &SparseDataset,
    cluster: &ClusterSpec,
    cfg: &TrainConfig,
    ps: &PsSystemConfig,
    angel: &AngelConfig,
    net: &NetConfig,
) -> Result<NetTrainOutput, NetError> {
    let k = cluster.num_executors();
    let dim = ds.num_features();
    let parts = system_partitions(system, ds, cluster, cfg);
    let row_nnz: Vec<usize> = ds.rows().iter().map(|r| r.nnz()).collect();
    let part_nnz: Vec<usize> = parts
        .iter()
        .map(|p| p.iter().map(|&i| row_nnz[i]).sum())
        .collect();

    let stats: SharedStats = Rc::new(RefCell::new(Vec::new()));
    let failure: SharedFailure = Rc::new(RefCell::new(None));
    let sw = Stopwatch::start();

    // Build worker bodies and a way for the orchestrator to reach them.
    // For channels the links exist up front; for TCP the orchestrator
    // accepts connections once the workers are running.
    enum Endpoints {
        Ready(Vec<Box<dyn Transport>>),
        Accept(TcpListener, usize),
    }
    let kill_for = |w: usize| net.kill.filter(|ks| ks.worker == w).map(|ks| ks.batch);
    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(k);
    let endpoints = match net.transport {
        TransportKind::Channel => {
            let mut links: Vec<Box<dyn Transport>> = Vec::with_capacity(k);
            for w in 0..k {
                let (orch_end, worker_end) = channel_pair();
                links.push(Box::new(orch_end));
                let kill = kill_for(w);
                bodies.push(Box::new(move || {
                    worker::run_worker(Box::new(worker_end), w, kill)
                }));
            }
            Endpoints::Ready(links)
        }
        TransportKind::Tcp => {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| NetError::Io(format!("tcp bind: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| NetError::Io(format!("tcp local_addr: {e}")))?;
            for w in 0..k {
                let kill = kill_for(w);
                bodies.push(Box::new(move || {
                    let Ok(stream) = TcpStream::connect(addr) else {
                        return;
                    };
                    let Ok(link) = TcpTransport::new(stream) else {
                        return;
                    };
                    worker::run_worker(Box::new(link), w, kill)
                }));
            }
            Endpoints::Accept(listener, k)
        }
    };

    let body_stats = Rc::clone(&stats);
    let body_failure = Rc::clone(&failure);
    let result: Result<TrainOutput, NetError> = pool::run_scoped(bodies, move || {
        let raw_links: Vec<Box<dyn Transport>> = match endpoints {
            Endpoints::Ready(links) => links,
            Endpoints::Accept(listener, n) => {
                let mut links: Vec<Box<dyn Transport>> = Vec::with_capacity(n);
                for _ in 0..n {
                    let (stream, _peer) = listener
                        .accept()
                        .map_err(|e| NetError::Io(format!("tcp accept: {e}")))?;
                    links.push(Box::new(TcpTransport::new(stream)?));
                }
                links
            }
        };

        // Handshake: every link leads with Hello; order the links by the
        // announced worker id (TCP connections arrive in any order).
        let mut slots: Vec<Option<Box<dyn Transport>>> = (0..k).map(|_| None).collect();
        for mut link in raw_links {
            let Msg::Hello { worker } = decode_msg(&link.recv()?)? else {
                return Err(NetError::Handshake("first message was not Hello".into()));
            };
            let w = worker as usize;
            if w >= k {
                return Err(NetError::Handshake(format!(
                    "worker id {w} out of range (k = {k})"
                )));
            }
            if slots[w].is_some() {
                return Err(NetError::Handshake(format!("duplicate worker id {w}")));
            }
            slots[w] = Some(link);
        }
        let mut links: Vec<Box<dyn Transport>> = slots
            .into_iter()
            // lint:allow(panic_in_lib): the duplicate/range checks above
            // guarantee k distinct in-range ids fill every slot.
            .map(|s| s.expect("k links with k distinct in-range ids fill every slot"))
            .collect();

        // Partition assignment. The frame switch for all model payloads
        // of the session comes from the training config's compression
        // settings and is announced to every worker here.
        let switch = cfg.compression.switch;
        for (w, link) in links.iter_mut().enumerate() {
            let rows = parts[w]
                .iter()
                .map(|&i| AssignedRow {
                    // lint:allow(panic_in_lib): dataset row counts are
                    // bounded far below u32::MAX by construction.
                    global: u32::try_from(i).expect("row index exceeds wire width"),
                    label: ds.labels()[i],
                    row: ds.rows()[i].clone(),
                })
                .collect();
            link.send(&encode_msg(
                &Msg::Assign {
                    worker: w as u32,
                    // lint:allow(panic_in_lib): feature dimensions are
                    // bounded far below u32::MAX by construction.
                    dim: u32::try_from(dim).expect("dimension exceeds wire width"),
                    loss: cfg.loss,
                    reg: cfg.reg,
                    lr: cfg.lr,
                    switch,
                    rows,
                },
                switch,
            ))?;
        }

        // Train with the orchestrator installed as the compute backend.
        // A backend failure unwinds out of the trainer as ExecAbort; the
        // typed error is parked in `body_failure` by the orchestrator.
        let links: SharedLinks = Rc::new(RefCell::new(links));
        let backend = Orchestrator::new(
            Rc::clone(&links),
            body_stats,
            Rc::clone(&body_failure),
            row_nnz,
            part_nnz,
            dim,
            switch,
        );
        let trained = with_backend(Box::new(backend), || {
            catch_unwind(AssertUnwindSafe(|| {
                system.train(ds, cluster, cfg, ps, angel)
            }))
        });

        // Orderly shutdown, dead links ignored (their workers are gone).
        for link in links.borrow_mut().iter_mut() {
            let _ = link.send(&encode_msg(&Msg::Shutdown, switch));
        }

        match trained {
            Ok(output) => Ok(output),
            Err(payload) => {
                if let Some(e) = body_failure.borrow_mut().take() {
                    return Err(e);
                }
                match payload.downcast::<ExecAbort>() {
                    Ok(abort) => Err(NetError::Protocol(abort.0)),
                    // A genuine trainer panic (not a backend failure):
                    // let it propagate as in the simulated path.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        }
    });

    let output = result?;
    let batches = std::mem::take(&mut *stats.borrow_mut());
    Ok(NetTrainOutput {
        output,
        batches,
        wall_s: sw.elapsed_s(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlstar_data::SyntheticConfig;
    use mlstar_sim::{NetworkSpec, NodeSpec};

    fn small_setup() -> (SparseDataset, ClusterSpec, TrainConfig) {
        let ds = SyntheticConfig::small("net-lib", 96, 12).generate();
        let cluster = ClusterSpec::uniform(3, NodeSpec::standard(), NetworkSpec::gbps1());
        let cfg = TrainConfig {
            max_rounds: 2,
            ..TrainConfig::default()
        };
        (ds, cluster, cfg)
    }

    #[test]
    fn channel_run_matches_simulated_weights() {
        let (ds, cluster, cfg) = small_setup();
        let sim = System::MllibStar.train(
            &ds,
            &cluster,
            &cfg,
            &PsSystemConfig::default(),
            &AngelConfig::default(),
        );
        let net = train_net(
            System::MllibStar,
            &ds,
            &cluster,
            &cfg,
            &PsSystemConfig::default(),
            &AngelConfig::default(),
            &NetConfig::default(),
        )
        .unwrap();
        assert_eq!(
            sim.model.weights().as_slice(),
            net.output.model.weights().as_slice()
        );
        assert_eq!(sim.trace, net.output.trace);
        assert!(!net.batches.is_empty());
        assert!(net.batches_per_sec() > 0.0);
    }

    #[test]
    fn killed_worker_is_a_typed_error() {
        let (ds, cluster, cfg) = small_setup();
        let net_cfg = NetConfig {
            kill: Some(KillSpec {
                batch: 1,
                worker: 1,
            }),
            ..NetConfig::default()
        };
        let err = train_net(
            System::MllibStar,
            &ds,
            &cluster,
            &cfg,
            &PsSystemConfig::default(),
            &AngelConfig::default(),
            &net_cfg,
        )
        .unwrap_err();
        assert!(matches!(err, NetError::WorkerLost { worker: 1 }));
    }
}
