//! The one clock in the crate.
//!
//! Everything `mlstar-net` reports about *time* flows through this
//! module, so the determinism linter can allowlist exactly one file: wall
//! clocks here feed measurement records only — never control flow, RNG
//! seeding, or model math — which is what keeps net-backed training
//! bit-identical to the simulated path.

use std::time::Instant;

/// A started wall-clock measurement.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the watch now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_s(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Whole nanoseconds elapsed since [`Stopwatch::start`] (saturating
    /// at `u64::MAX` — ~584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_moves_forward() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
        assert!(sw.elapsed_s() >= 0.0);
    }
}
