//! The orchestrator side: a [`ComputeBackend`] that ships op batches to
//! real workers and measures each phase of the exchange.
//!
//! Per dispatch batch, the orchestrator records for every participating
//! worker the serialized bytes in each direction, the worker-reported
//! pure compute time, and the orchestrator-observed turnaround — the
//! samples `cluster::calibrate` fits the cost-model rates from. All
//! timing flows through [`crate::measure`]; none of it feeds back into
//! the math.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use mlstar_collectives::FrameSwitch;
use mlstar_core::{ComputeBackend, OpResult, WorkerOp};
use mlstar_sim::{dense_op_flops, pass_flops};

use crate::error::NetError;
use crate::measure::Stopwatch;
use crate::protocol::{decode_msg, encode_msg, Msg};
use crate::transport::Transport;

/// One worker's share of one dispatch batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerBatchStats {
    /// Worker index.
    pub worker: usize,
    /// Ops executed by this worker in the batch.
    pub ops: usize,
    /// Modeled floating-point work of those ops (same formulas the
    /// simulator charges).
    pub flops: f64,
    /// Serialized bytes orchestrator → worker.
    pub bytes_out: u64,
    /// Serialized bytes worker → orchestrator.
    pub bytes_in: u64,
    /// Protocol messages exchanged (request + reply).
    pub messages: u64,
    /// Worker-reported pure compute seconds.
    pub compute_s: f64,
    /// Orchestrator-observed seconds from batch start to this worker's
    /// reply being fully received.
    pub turnaround_s: f64,
}

impl WorkerBatchStats {
    /// Turnaround minus compute — time spent serializing, in flight, and
    /// queued (clamped at zero against clock skew).
    pub fn comm_s(&self) -> f64 {
        (self.turnaround_s - self.compute_s).max(0.0)
    }
}

/// Measurements for one dispatch batch (one `Ops`/`OpDone` exchange with
/// every participating worker).
#[derive(Debug, Clone, PartialEq)]
pub struct NetBatchStats {
    /// Monotone batch id.
    pub batch: u64,
    /// Wall-clock seconds for the whole batch (send-first to
    /// last-reply).
    pub wall_s: f64,
    /// Per-worker breakdown, in worker order.
    pub workers: Vec<WorkerBatchStats>,
}

impl NetBatchStats {
    /// A worker's idle share of this batch: wall time minus its own
    /// turnaround (it had answered and sat waiting for the barrier).
    pub fn idle_s(&self, worker_stats: &WorkerBatchStats) -> f64 {
        (self.wall_s - worker_stats.turnaround_s).max(0.0)
    }
}

pub(crate) type SharedLinks = Rc<RefCell<Vec<Box<dyn Transport>>>>;
pub(crate) type SharedStats = Rc<RefCell<Vec<NetBatchStats>>>;
pub(crate) type SharedFailure = Rc<RefCell<Option<NetError>>>;

/// The backend installed for the duration of a net-backed training run.
pub(crate) struct Orchestrator {
    links: SharedLinks,
    stats: SharedStats,
    failure: SharedFailure,
    /// nnz of every dataset row, for per-op flop accounting.
    row_nnz: Vec<usize>,
    /// Total nnz per worker partition.
    part_nnz: Vec<usize>,
    dim: usize,
    /// Model-payload encoding for outgoing `Ops` frames (the same switch
    /// the workers were told in `Assign`).
    switch: FrameSwitch,
    next_batch: u64,
}

impl Orchestrator {
    pub(crate) fn new(
        links: SharedLinks,
        stats: SharedStats,
        failure: SharedFailure,
        row_nnz: Vec<usize>,
        part_nnz: Vec<usize>,
        dim: usize,
        switch: FrameSwitch,
    ) -> Self {
        Orchestrator {
            links,
            stats,
            failure,
            row_nnz,
            part_nnz,
            dim,
            switch,
            next_batch: 0,
        }
    }

    /// Records the typed error and returns its rendering for the
    /// `ComputeBackend` contract.
    fn fail(&self, e: NetError) -> String {
        let msg = e.to_string();
        *self.failure.borrow_mut() = Some(e);
        msg
    }

    fn indices_nnz(&self, idx: &[u32]) -> usize {
        idx.iter().map(|&i| self.row_nnz[i as usize]).sum()
    }

    /// The modeled flops of one op — the same formulas the simulated path
    /// charges for the equivalent inline work.
    fn op_flops(&self, worker: usize, op: &WorkerOp) -> f64 {
        match op {
            WorkerOp::SgdPass { order, .. } => pass_flops(self.indices_nnz(order)),
            WorkerOp::SgdBatch { batch, .. } => pass_flops(self.indices_nnz(batch)),
            WorkerOp::PartitionGrad { .. } => pass_flops(self.part_nnz[worker]),
            WorkerOp::BatchGrad { batch, .. } => pass_flops(self.indices_nnz(batch)),
            WorkerOp::MgdStep { batch, .. } => {
                pass_flops(self.indices_nnz(batch)) + 2.0 * dense_op_flops(self.dim)
            }
            WorkerOp::MgdEpoch {
                order, batch_size, ..
            } => {
                let n_batches = order.len().div_ceil((*batch_size).max(1) as usize);
                pass_flops(self.indices_nnz(order))
                    + 2.0 * dense_op_flops(self.dim) * n_batches as f64
            }
            WorkerOp::PartitionObjective { .. } => pass_flops(self.part_nnz[worker]) / 2.0,
        }
    }
}

impl ComputeBackend for Orchestrator {
    fn run_ops(&mut self, ops: Vec<(usize, WorkerOp)>) -> Result<Vec<OpResult>, String> {
        let batch = self.next_batch;
        self.next_batch += 1;
        let n_ops = ops.len();

        // Group ops per worker, remembering each op's submission slot.
        let mut per_worker: BTreeMap<usize, (Vec<usize>, Vec<WorkerOp>, f64)> = BTreeMap::new();
        for (pos, (worker, op)) in ops.into_iter().enumerate() {
            let flops = self.op_flops(worker, &op);
            let entry = per_worker.entry(worker).or_default();
            entry.0.push(pos);
            entry.1.push(op);
            entry.2 += flops;
        }

        let mut links = self.links.borrow_mut();
        let sw = Stopwatch::start();
        let mut worker_stats: Vec<WorkerBatchStats> = Vec::with_capacity(per_worker.len());
        let mut positions: BTreeMap<usize, Vec<usize>> = BTreeMap::new();

        // Send phase: every worker gets its ops before any reply is
        // awaited, so workers genuinely compute concurrently.
        for (&worker, (pos, ops, flops)) in per_worker.iter_mut() {
            let frame = encode_msg(
                &Msg::Ops {
                    batch,
                    ops: std::mem::take(ops),
                },
                self.switch,
            );
            if links[worker].send(&frame).is_err() {
                return Err(self.fail(NetError::WorkerLost { worker }));
            }
            worker_stats.push(WorkerBatchStats {
                worker,
                ops: pos.len(),
                flops: *flops,
                bytes_out: frame.len() as u64,
                bytes_in: 0,
                messages: 2,
                compute_s: 0.0,
                turnaround_s: 0.0,
            });
            positions.insert(worker, std::mem::take(pos));
        }

        // Receive phase, in worker order (the barrier).
        let mut slots: Vec<Option<OpResult>> = (0..n_ops).map(|_| None).collect();
        for ws in worker_stats.iter_mut() {
            let worker = ws.worker;
            let frame = match links[worker].recv() {
                Ok(f) => f,
                Err(_) => return Err(self.fail(NetError::WorkerLost { worker })),
            };
            ws.bytes_in = frame.len() as u64;
            ws.turnaround_s = sw.elapsed_s();
            let msg = match decode_msg(&frame) {
                Ok(m) => m,
                Err(e) => return Err(self.fail(e)),
            };
            let Msg::OpDone {
                batch: echoed,
                compute_nanos,
                results,
            } = msg
            else {
                return Err(self.fail(NetError::Protocol(format!(
                    "worker {worker} sent a non-OpDone reply"
                ))));
            };
            if echoed != batch {
                return Err(self.fail(NetError::Protocol(format!(
                    "worker {worker} answered batch {echoed}, expected {batch}"
                ))));
            }
            let pos = &positions[&worker];
            if results.len() != pos.len() {
                return Err(self.fail(NetError::Protocol(format!(
                    "worker {worker} returned {} results for {} ops",
                    results.len(),
                    pos.len()
                ))));
            }
            ws.compute_s = compute_nanos as f64 * 1e-9;
            for (&slot, res) in pos.iter().zip(results) {
                slots[slot] = Some(res);
            }
        }

        let wall_s = sw.elapsed_s();
        self.stats.borrow_mut().push(NetBatchStats {
            batch,
            wall_s,
            workers: worker_stats,
        });

        Ok(slots
            .into_iter()
            // lint:allow(panic_in_lib): the reply loop above returns an
            // error unless every dispatched op produced a result.
            .map(|s| s.expect("every op slot filled by its worker's reply"))
            .collect())
    }
}
