//! The orchestrator/worker command protocol.
//!
//! Every message is one `mlstar-codec` frame (magic `"MLSN"`,
//! checksummed payload). Vector payloads reuse `collectives::wire` — the
//! exact encoding whose byte counts the simulator charges for — embedded
//! as length-prefixed blobs. Model payloads go through the adaptive
//! dense↔sparse switch ([`wire::encode_adaptive`]): under
//! [`FrameSwitch::Adaptive`] a model whose exact-sparse frame is smaller
//! travels sparsely, and the decoder materializes it back bit-for-bit
//! (the sparse path is lossless). Under [`FrameSwitch::Dense`] every
//! frame is byte-identical to the legacy dense encoding. `f64`
//! round-trips through little-endian bytes exactly, so nothing a worker
//! computes is perturbed by the hop.
//!
//! The orchestrator announces the switch in `Assign`; the worker encodes
//! its `OpDone` results with the same switch, so both directions of the
//! link move the same frames the simulator charges for. Decoding is
//! switch-agnostic — the frame kind byte selects the decoder.
//!
//! Message flow:
//!
//! ```text
//! worker → orchestrator   Hello { worker }
//! orchestrator → worker   Assign { worker, dim, loss, reg, lr, switch, rows }
//! orchestrator → worker   Ops { batch, ops }          (repeated)
//! worker → orchestrator   OpDone { batch, results }   (one per Ops)
//! orchestrator → worker   Shutdown
//! ```

use bytes::Bytes;
use mlstar_codec::{decode_frame, CodecError, Reader, Writer};
use mlstar_collectives::{wire, FrameSwitch};
use mlstar_core::{OpResult, WorkerOp};
use mlstar_glm::{LearningRate, Loss, Regularizer};
use mlstar_linalg::{DenseVector, SparseVector};

use crate::error::NetError;

/// `"MLSN"` — the protocol frame magic.
pub const NET_MAGIC: u32 = 0x4D4C_534E;
/// Protocol version this build speaks.
pub const NET_VERSION: u32 = 1;

const MSG_HELLO: u8 = 1;
const MSG_ASSIGN: u8 = 2;
const MSG_OPS: u8 = 3;
const MSG_OP_DONE: u8 = 4;
const MSG_SHUTDOWN: u8 = 5;

const OP_SGD_PASS: u8 = 1;
const OP_SGD_BATCH: u8 = 2;
const OP_PARTITION_GRAD: u8 = 3;
const OP_BATCH_GRAD: u8 = 4;
const OP_MGD_STEP: u8 = 5;
const OP_MGD_EPOCH: u8 = 6;
const OP_PARTITION_OBJECTIVE: u8 = 7;

const RES_MODEL: u8 = 1;
const RES_GRAD: u8 = 2;
const RES_VALUE: u8 = 3;

/// One row shipped to a worker at assignment time.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignedRow {
    /// The row's index in the full dataset (ops address rows by this).
    pub global: u32,
    /// The row's label.
    pub label: f64,
    /// The feature vector.
    pub row: SparseVector,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker self-identification, first message on every link.
    Hello {
        /// The worker's index.
        worker: u32,
    },
    /// The worker's standing state: its partition and the GLM problem.
    Assign {
        /// Worker index (echoed for cross-checking).
        worker: u32,
        /// Model dimensionality.
        dim: u32,
        /// Loss function.
        loss: Loss,
        /// Regularizer.
        reg: Regularizer,
        /// Learning-rate schedule (workers evaluate it only where the op
        /// semantics say so — e.g. per-chunk inside `MgdEpoch`).
        lr: LearningRate,
        /// The frame switch both ends encode model payloads with for the
        /// rest of the session.
        switch: FrameSwitch,
        /// The rows of this worker's partition, in partition order.
        rows: Vec<AssignedRow>,
    },
    /// A batch of compute ops for this worker.
    Ops {
        /// Monotone batch id (echoed in the reply).
        batch: u64,
        /// The ops, executed in order.
        ops: Vec<WorkerOp>,
    },
    /// The worker's results for one `Ops` batch.
    OpDone {
        /// The batch this answers.
        batch: u64,
        /// Worker-measured pure compute time for the batch.
        compute_nanos: u64,
        /// One result per op, in op order.
        results: Vec<OpResult>,
    },
    /// Orderly end of the session.
    Shutdown,
}

fn put_model(w: &mut Writer, v: &DenseVector, switch: FrameSwitch) {
    w.put_blob64(&wire::encode_adaptive(v, switch));
}

fn get_model(r: &mut Reader<'_>) -> Result<DenseVector, NetError> {
    let raw = r.blob64()?;
    wire::decode_adaptive(&Bytes::from(raw.to_vec()))
        .map_err(|e| NetError::Protocol(format!("model payload: {e}")))
}

fn put_switch(w: &mut Writer, switch: FrameSwitch) {
    w.put_u8(match switch {
        FrameSwitch::Dense => 0,
        FrameSwitch::Adaptive => 1,
    });
}

fn get_switch(r: &mut Reader<'_>) -> Result<FrameSwitch, NetError> {
    match r.u8()? {
        0 => Ok(FrameSwitch::Dense),
        1 => Ok(FrameSwitch::Adaptive),
        t => Err(NetError::Protocol(format!("unknown frame-switch tag {t}"))),
    }
}

fn put_indices(w: &mut Writer, idx: &[u32]) {
    w.put_u64(idx.len() as u64);
    for &i in idx {
        w.put_u32(i);
    }
}

fn get_indices(r: &mut Reader<'_>) -> Result<Vec<u32>, NetError> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn put_loss(w: &mut Writer, loss: Loss) {
    w.put_u8(match loss {
        Loss::Hinge => 0,
        Loss::Logistic => 1,
        Loss::Squared => 2,
    });
}

fn get_loss(r: &mut Reader<'_>) -> Result<Loss, NetError> {
    match r.u8()? {
        0 => Ok(Loss::Hinge),
        1 => Ok(Loss::Logistic),
        2 => Ok(Loss::Squared),
        t => Err(NetError::Protocol(format!("unknown loss tag {t}"))),
    }
}

fn put_reg(w: &mut Writer, reg: Regularizer) {
    match reg {
        Regularizer::None => w.put_u8(0),
        Regularizer::L2 { lambda } => {
            w.put_u8(1);
            w.put_f64(lambda);
        }
        Regularizer::L1 { lambda } => {
            w.put_u8(2);
            w.put_f64(lambda);
        }
    }
}

fn get_reg(r: &mut Reader<'_>) -> Result<Regularizer, NetError> {
    match r.u8()? {
        0 => Ok(Regularizer::None),
        1 => Ok(Regularizer::L2 { lambda: r.f64()? }),
        2 => Ok(Regularizer::L1 { lambda: r.f64()? }),
        t => Err(NetError::Protocol(format!("unknown regularizer tag {t}"))),
    }
}

fn put_lr(w: &mut Writer, lr: LearningRate) {
    match lr {
        LearningRate::Constant(eta0) => {
            w.put_u8(0);
            w.put_f64(eta0);
        }
        LearningRate::InvSqrt(eta0) => {
            w.put_u8(1);
            w.put_f64(eta0);
        }
        LearningRate::InvT { eta0, decay } => {
            w.put_u8(2);
            w.put_f64(eta0);
            w.put_f64(decay);
        }
        LearningRate::Exponential {
            eta0,
            factor,
            period,
        } => {
            w.put_u8(3);
            w.put_f64(eta0);
            w.put_f64(factor);
            w.put_u64(period);
        }
    }
}

fn get_lr(r: &mut Reader<'_>) -> Result<LearningRate, NetError> {
    match r.u8()? {
        0 => Ok(LearningRate::Constant(r.f64()?)),
        1 => Ok(LearningRate::InvSqrt(r.f64()?)),
        2 => Ok(LearningRate::InvT {
            eta0: r.f64()?,
            decay: r.f64()?,
        }),
        3 => Ok(LearningRate::Exponential {
            eta0: r.f64()?,
            factor: r.f64()?,
            period: r.u64()?,
        }),
        t => Err(NetError::Protocol(format!("unknown learning-rate tag {t}"))),
    }
}

fn put_op(w: &mut Writer, op: &WorkerOp, switch: FrameSwitch) {
    match op {
        WorkerOp::SgdPass {
            w: model,
            order,
            t0,
        } => {
            w.put_u8(OP_SGD_PASS);
            put_model(w, model, switch);
            w.put_u64(*t0);
            put_indices(w, order);
        }
        WorkerOp::SgdBatch {
            w: model,
            batch,
            t0,
        } => {
            w.put_u8(OP_SGD_BATCH);
            put_model(w, model, switch);
            w.put_u64(*t0);
            put_indices(w, batch);
        }
        WorkerOp::PartitionGrad { w: model } => {
            w.put_u8(OP_PARTITION_GRAD);
            put_model(w, model, switch);
        }
        WorkerOp::BatchGrad { w: model, batch } => {
            w.put_u8(OP_BATCH_GRAD);
            put_model(w, model, switch);
            put_indices(w, batch);
        }
        WorkerOp::MgdStep {
            w: model,
            batch,
            eta,
        } => {
            w.put_u8(OP_MGD_STEP);
            put_model(w, model, switch);
            w.put_f64(*eta);
            put_indices(w, batch);
        }
        WorkerOp::MgdEpoch {
            w: model,
            order,
            batch_size,
            t0,
        } => {
            w.put_u8(OP_MGD_EPOCH);
            put_model(w, model, switch);
            w.put_u64(*t0);
            w.put_u32(*batch_size);
            put_indices(w, order);
        }
        WorkerOp::PartitionObjective { w: model } => {
            w.put_u8(OP_PARTITION_OBJECTIVE);
            put_model(w, model, switch);
        }
    }
}

fn get_op(r: &mut Reader<'_>) -> Result<WorkerOp, NetError> {
    match r.u8()? {
        OP_SGD_PASS => Ok(WorkerOp::SgdPass {
            w: get_model(r)?,
            t0: r.u64()?,
            order: get_indices(r)?,
        }),
        OP_SGD_BATCH => Ok(WorkerOp::SgdBatch {
            w: get_model(r)?,
            t0: r.u64()?,
            batch: get_indices(r)?,
        }),
        OP_PARTITION_GRAD => Ok(WorkerOp::PartitionGrad { w: get_model(r)? }),
        OP_BATCH_GRAD => Ok(WorkerOp::BatchGrad {
            w: get_model(r)?,
            batch: get_indices(r)?,
        }),
        OP_MGD_STEP => Ok(WorkerOp::MgdStep {
            w: get_model(r)?,
            eta: r.f64()?,
            batch: get_indices(r)?,
        }),
        OP_MGD_EPOCH => Ok(WorkerOp::MgdEpoch {
            w: get_model(r)?,
            t0: r.u64()?,
            batch_size: r.u32()?,
            order: get_indices(r)?,
        }),
        OP_PARTITION_OBJECTIVE => Ok(WorkerOp::PartitionObjective { w: get_model(r)? }),
        t => Err(NetError::Protocol(format!("unknown op tag {t}"))),
    }
}

fn put_result(w: &mut Writer, res: &OpResult, switch: FrameSwitch) {
    match res {
        OpResult::Model { w: model, t } => {
            w.put_u8(RES_MODEL);
            put_model(w, model, switch);
            w.put_u64(*t);
        }
        OpResult::Grad(g) => {
            w.put_u8(RES_GRAD);
            put_model(w, g, switch);
        }
        OpResult::Value(v) => {
            w.put_u8(RES_VALUE);
            w.put_f64(*v);
        }
    }
}

fn get_result(r: &mut Reader<'_>) -> Result<OpResult, NetError> {
    match r.u8()? {
        RES_MODEL => Ok(OpResult::Model {
            w: get_model(r)?,
            t: r.u64()?,
        }),
        RES_GRAD => Ok(OpResult::Grad(get_model(r)?)),
        RES_VALUE => Ok(OpResult::Value(r.f64()?)),
        t => Err(NetError::Protocol(format!("unknown result tag {t}"))),
    }
}

/// Encodes a message as one checksummed frame.
///
/// `switch` selects the model-payload encoding for `Ops` and `OpDone`
/// (an `Assign` carries its own switch field; `Hello` and `Shutdown`
/// have no model payloads). [`FrameSwitch::Dense`] reproduces the legacy
/// all-dense frames byte for byte.
pub fn encode_msg(msg: &Msg, switch: FrameSwitch) -> Vec<u8> {
    let mut w = Writer::new();
    match msg {
        Msg::Hello { worker } => {
            w.put_u8(MSG_HELLO);
            w.put_u32(*worker);
        }
        Msg::Assign {
            worker,
            dim,
            loss,
            reg,
            lr,
            switch: assigned,
            rows,
        } => {
            w.put_u8(MSG_ASSIGN);
            w.put_u32(*worker);
            w.put_u32(*dim);
            put_loss(&mut w, *loss);
            put_reg(&mut w, *reg);
            put_lr(&mut w, *lr);
            put_switch(&mut w, *assigned);
            w.put_u64(rows.len() as u64);
            for r in rows {
                w.put_u32(r.global);
                w.put_f64(r.label);
                w.put_blob64(&wire::encode_sparse(&r.row));
            }
        }
        Msg::Ops { batch, ops } => {
            w.put_u8(MSG_OPS);
            w.put_u64(*batch);
            w.put_u64(ops.len() as u64);
            for op in ops {
                put_op(&mut w, op, switch);
            }
        }
        Msg::OpDone {
            batch,
            compute_nanos,
            results,
        } => {
            w.put_u8(MSG_OP_DONE);
            w.put_u64(*batch);
            w.put_u64(*compute_nanos);
            w.put_u64(results.len() as u64);
            for res in results {
                put_result(&mut w, res, switch);
            }
        }
        Msg::Shutdown => {
            w.put_u8(MSG_SHUTDOWN);
        }
    }
    w.into_frame(NET_MAGIC, NET_VERSION)
}

/// Decodes one frame into a message, validating magic, version, checksum
/// and full payload consumption.
pub fn decode_msg(frame: &[u8]) -> Result<Msg, NetError> {
    let payload = decode_frame(frame, NET_MAGIC, NET_VERSION)?;
    let mut r = Reader::new(payload);
    let msg = match r.u8()? {
        MSG_HELLO => Msg::Hello { worker: r.u32()? },
        MSG_ASSIGN => {
            let worker = r.u32()?;
            let dim = r.u32()?;
            let loss = get_loss(&mut r)?;
            let reg = get_reg(&mut r)?;
            let lr = get_lr(&mut r)?;
            let switch = get_switch(&mut r)?;
            let n = r.u64()? as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let global = r.u32()?;
                let label = r.f64()?;
                let raw = r.blob64()?;
                let row = wire::decode_sparse(&Bytes::from(raw.to_vec()))
                    .map_err(|e| NetError::Protocol(format!("sparse payload: {e}")))?;
                rows.push(AssignedRow { global, label, row });
            }
            Msg::Assign {
                worker,
                dim,
                loss,
                reg,
                lr,
                switch,
                rows,
            }
        }
        MSG_OPS => {
            let batch = r.u64()?;
            let n = r.u64()? as usize;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(get_op(&mut r)?);
            }
            Msg::Ops { batch, ops }
        }
        MSG_OP_DONE => {
            let batch = r.u64()?;
            let compute_nanos = r.u64()?;
            let n = r.u64()? as usize;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(get_result(&mut r)?);
            }
            Msg::OpDone {
                batch,
                compute_nanos,
                results,
            }
        }
        MSG_SHUTDOWN => Msg::Shutdown,
        t => return Err(NetError::Protocol(format!("unknown message tag {t}"))),
    };
    r.finish().map_err(|e: CodecError| NetError::from(e))?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        // Both switch settings must round-trip to the identical message:
        // the adaptive sparse path is lossless by construction.
        for switch in [FrameSwitch::Dense, FrameSwitch::Adaptive] {
            let frame = encode_msg(&msg, switch);
            let back = decode_msg(&frame).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Msg::Hello { worker: 3 });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::Assign {
            worker: 1,
            dim: 4,
            loss: Loss::Logistic,
            reg: Regularizer::L2 { lambda: 0.25 },
            lr: LearningRate::Exponential {
                eta0: 0.1,
                factor: 0.5,
                period: 7,
            },
            switch: FrameSwitch::Adaptive,
            rows: vec![AssignedRow {
                global: 9,
                label: -1.0,
                row: SparseVector::from_pairs(4, &[(0, 1.5), (3, -2.0)]).unwrap(),
            }],
        });
        roundtrip(Msg::Ops {
            batch: 12,
            ops: vec![
                WorkerOp::SgdPass {
                    w: DenseVector::from_vec(vec![1.0, -0.5]),
                    order: vec![2, 0, 1],
                    t0: 5,
                },
                WorkerOp::SgdBatch {
                    w: DenseVector::zeros(2),
                    batch: vec![1],
                    t0: 0,
                },
                WorkerOp::PartitionGrad {
                    w: DenseVector::zeros(2),
                },
                WorkerOp::BatchGrad {
                    w: DenseVector::zeros(2),
                    batch: vec![0, 2],
                },
                WorkerOp::MgdStep {
                    w: DenseVector::zeros(2),
                    batch: vec![0],
                    eta: 0.05,
                },
                WorkerOp::MgdEpoch {
                    w: DenseVector::zeros(2),
                    order: vec![1, 0],
                    batch_size: 1,
                    t0: 3,
                },
                WorkerOp::PartitionObjective {
                    w: DenseVector::zeros(2),
                },
            ],
        });
        roundtrip(Msg::OpDone {
            batch: 12,
            compute_nanos: 98765,
            results: vec![
                OpResult::Model {
                    w: DenseVector::from_vec(vec![0.25, f64::MIN_POSITIVE]),
                    t: 8,
                },
                OpResult::Grad(DenseVector::from_vec(vec![-1.0, 2.0])),
                OpResult::Value(0.375),
            ],
        });
    }

    #[test]
    fn lr_variants_roundtrip() {
        for lr in [
            LearningRate::Constant(0.1),
            LearningRate::InvSqrt(0.2),
            LearningRate::InvT {
                eta0: 0.3,
                decay: 0.01,
            },
        ] {
            roundtrip(Msg::Assign {
                worker: 0,
                dim: 1,
                loss: Loss::Hinge,
                reg: Regularizer::None,
                lr,
                switch: FrameSwitch::Dense,
                rows: vec![],
            });
        }
        roundtrip(Msg::Assign {
            worker: 0,
            dim: 1,
            loss: Loss::Squared,
            reg: Regularizer::L1 { lambda: 0.5 },
            lr: LearningRate::Constant(0.1),
            switch: FrameSwitch::Dense,
            rows: vec![],
        });
    }

    #[test]
    fn rejects_corrupt_frames() {
        let mut frame = encode_msg(&Msg::Hello { worker: 1 }, FrameSwitch::Dense);
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        assert!(matches!(decode_msg(&frame), Err(NetError::Codec(_))));
    }

    #[test]
    fn rejects_unknown_tags() {
        let mut w = Writer::new();
        w.put_u8(99);
        let frame = w.into_frame(NET_MAGIC, NET_VERSION);
        assert!(matches!(decode_msg(&frame), Err(NetError::Protocol(_))));
    }

    #[test]
    fn rejects_unknown_switch_tag() {
        let mut w = Writer::new();
        w.put_u8(MSG_ASSIGN);
        w.put_u32(0);
        w.put_u32(1);
        put_loss(&mut w, Loss::Hinge);
        put_reg(&mut w, Regularizer::None);
        put_lr(&mut w, LearningRate::Constant(0.1));
        w.put_u8(7); // not a valid frame-switch tag
        w.put_u64(0);
        let frame = w.into_frame(NET_MAGIC, NET_VERSION);
        assert!(matches!(decode_msg(&frame), Err(NetError::Protocol(_))));
    }

    #[test]
    fn adaptive_switch_shrinks_mostly_zero_models() {
        let mut model = DenseVector::zeros(256);
        model.set(3, 1.5);
        model.set(100, -2.0);
        let msg = Msg::Ops {
            batch: 1,
            ops: vec![WorkerOp::PartitionGrad { w: model }],
        };
        let dense = encode_msg(&msg, FrameSwitch::Dense);
        let adaptive = encode_msg(&msg, FrameSwitch::Adaptive);
        assert!(
            adaptive.len() < dense.len(),
            "adaptive {} vs dense {}",
            adaptive.len(),
            dense.len()
        );
        // Same decoded message either way — the sparse hop is lossless.
        assert_eq!(decode_msg(&adaptive).unwrap(), decode_msg(&dense).unwrap());
    }
}
