//! The crate's only thread-spawning module.
//!
//! Workers are real OS threads, but they live inside one
//! `std::thread::scope`: the orchestrator body runs on the calling
//! thread, and the scope cannot be exited until every worker has
//! returned. That makes worker lifetime a *structural* guarantee — no
//! detached threads, no join handles to forget — which is why the
//! determinism linter allowlists exactly this module for `thread::scope`.

/// Runs `body` on the current thread while `workers` run on scoped
/// threads; returns `body`'s result after every worker has exited.
///
/// Workers are expected to exit when their transport disconnects or a
/// shutdown message arrives — `body` is responsible for triggering one of
/// the two before returning, otherwise the scope (correctly) blocks.
pub(crate) fn run_scoped<'env, T>(
    workers: Vec<Box<dyn FnOnce() + Send + 'env>>,
    body: impl FnOnce() -> T,
) -> T {
    std::thread::scope(|scope| {
        for worker in workers {
            scope.spawn(worker);
        }
        body()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn body_runs_with_workers_alive() {
        let (tx, rx) = channel::<u32>();
        let (done_tx, done_rx) = channel::<()>();
        let worker: Box<dyn FnOnce() + Send> = Box::new(move || {
            tx.send(41).unwrap();
            // Exit when the body says so (models transport shutdown).
            done_rx.recv().unwrap();
        });
        let got = run_scoped(vec![worker], move || {
            let v = rx.recv().unwrap() + 1;
            done_tx.send(()).unwrap();
            v
        });
        assert_eq!(got, 42);
    }
}
