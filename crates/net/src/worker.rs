//! The worker loop: execute compute ops against the assigned partition.
//!
//! A worker holds only its own rows. Ops address rows by *global* dataset
//! index; the worker maps them to local storage and then performs the
//! exact `mlstar-glm` call sequence the inline (simulated) path performs
//! — same functions, same visit order, same scratch-buffer entry points —
//! so the returned floats are bit-identical to what the orchestrator
//! would have computed itself.

use std::collections::BTreeMap;

use mlstar_collectives::FrameSwitch;
use mlstar_core::{OpResult, WorkerOp};
use mlstar_glm::{
    batch_gradient_into, mgd_step, objective_value_subset, sgd_epoch_lazy, LearningRate, Loss,
    Regularizer,
};
use mlstar_linalg::{DenseVector, ScaledVector, SparseVector};

use crate::error::NetError;
use crate::measure::Stopwatch;
use crate::protocol::{decode_msg, encode_msg, AssignedRow, Msg};
use crate::transport::Transport;

/// Entry point for a worker thread. Any error (protocol violation, dead
/// orchestrator) ends the loop and drops the transport — the orchestrator
/// observes the disconnect and surfaces [`NetError::WorkerLost`].
pub(crate) fn run_worker(mut link: Box<dyn Transport>, worker: usize, kill_at_batch: Option<u64>) {
    let _ = worker_loop(&mut *link, worker, kill_at_batch);
}

fn worker_loop(
    link: &mut dyn Transport,
    worker: usize,
    kill_at_batch: Option<u64>,
) -> Result<(), NetError> {
    // Hello precedes the assignment, so it is always encoded dense (it
    // carries no model payloads either way).
    link.send(&encode_msg(
        &Msg::Hello {
            worker: worker as u32,
        },
        FrameSwitch::Dense,
    ))?;
    let Msg::Assign {
        worker: echoed,
        dim,
        loss,
        reg,
        lr,
        switch,
        rows,
    } = decode_msg(&link.recv()?)?
    else {
        return Err(NetError::Protocol("expected Assign after Hello".into()));
    };
    if echoed as usize != worker {
        return Err(NetError::Protocol(format!(
            "assignment for worker {echoed} delivered to worker {worker}"
        )));
    }
    let mut rt = Runtime::new(dim as usize, loss, reg, lr, rows);
    loop {
        match decode_msg(&link.recv()?)? {
            Msg::Ops { batch, ops } => {
                if kill_at_batch == Some(batch) {
                    // Fault injection: die without answering. The dropped
                    // transport is the crash signal.
                    return Ok(());
                }
                let sw = Stopwatch::start();
                let mut results = Vec::with_capacity(ops.len());
                for op in ops {
                    results.push(rt.execute(op)?);
                }
                let compute_nanos = sw.elapsed_nanos();
                // Replies use the switch announced in Assign, so both
                // directions of the link move the same frame kinds.
                link.send(&encode_msg(
                    &Msg::OpDone {
                        batch,
                        compute_nanos,
                        results,
                    },
                    switch,
                ))?;
            }
            Msg::Shutdown => return Ok(()),
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected message in op loop: {other:?}"
                )))
            }
        }
    }
}

/// A worker's standing state between op batches.
struct Runtime {
    dim: usize,
    loss: Loss,
    reg: Regularizer,
    lr: LearningRate,
    /// Partition rows, in assignment (= partition) order.
    rows: Vec<SparseVector>,
    labels: Vec<f64>,
    /// Global row index → position in `rows`.
    index: BTreeMap<u32, usize>,
    /// `0..rows.len()` — the whole partition, in partition order.
    all: Vec<usize>,
    /// Reused lazy-scale buffer, mirroring the inline path's scratch.
    scratch: ScaledVector,
    /// Reused gradient buffer for `mgd_step`.
    grad_buf: DenseVector,
}

impl Runtime {
    fn new(
        dim: usize,
        loss: Loss,
        reg: Regularizer,
        lr: LearningRate,
        assigned: Vec<AssignedRow>,
    ) -> Self {
        let mut rows = Vec::with_capacity(assigned.len());
        let mut labels = Vec::with_capacity(assigned.len());
        let mut index = BTreeMap::new();
        for (local, r) in assigned.into_iter().enumerate() {
            index.insert(r.global, local);
            rows.push(r.row);
            labels.push(r.label);
        }
        let all = (0..rows.len()).collect();
        Runtime {
            dim,
            loss,
            reg,
            lr,
            rows,
            labels,
            index,
            all,
            scratch: ScaledVector::zeros(dim),
            grad_buf: DenseVector::zeros(dim),
        }
    }

    /// Maps a global index list to local positions, in order.
    fn local(&self, global: &[u32]) -> Result<Vec<usize>, NetError> {
        global
            .iter()
            .map(|g| {
                self.index
                    .get(g)
                    .copied()
                    .ok_or_else(|| NetError::Protocol(format!("row {g} not in this partition")))
            })
            .collect()
    }

    fn check_dim(&self, w: &DenseVector) -> Result<(), NetError> {
        if w.dim() == self.dim {
            Ok(())
        } else {
            Err(NetError::Protocol(format!(
                "op model has dim {}, assignment said {}",
                w.dim(),
                self.dim
            )))
        }
    }

    fn execute(&mut self, op: WorkerOp) -> Result<OpResult, NetError> {
        match op {
            WorkerOp::SgdPass { w, order, t0 } => {
                self.check_dim(&w)?;
                let order = self.local(&order)?;
                // Mirrors local_sgd_passes: assign into the reused
                // scratch, run the lazy epoch, copy out.
                self.scratch.assign_dense(&w);
                let t = sgd_epoch_lazy(
                    self.loss,
                    self.reg,
                    &mut self.scratch,
                    &self.rows,
                    &self.labels,
                    &order,
                    self.lr,
                    t0,
                );
                let mut out = DenseVector::zeros(self.dim);
                self.scratch.copy_into(&mut out);
                Ok(OpResult::Model { w: out, t })
            }
            WorkerOp::SgdBatch { w, batch, t0 } => {
                self.check_dim(&w)?;
                let batch = self.local(&batch)?;
                // Mirrors PetuumWorker::compute (Ω = 0): fresh
                // ScaledVector from the model, lazy epoch, into_dense.
                let mut local = ScaledVector::from_dense(w);
                let t = sgd_epoch_lazy(
                    self.loss,
                    self.reg,
                    &mut local,
                    &self.rows,
                    &self.labels,
                    &batch,
                    self.lr,
                    t0,
                );
                Ok(OpResult::Model {
                    w: local.into_dense(),
                    t,
                })
            }
            WorkerOp::PartitionGrad { w } => {
                self.check_dim(&w)?;
                let mut g = DenseVector::zeros(self.dim);
                batch_gradient_into(self.loss, &w, &self.rows, &self.labels, &self.all, &mut g);
                Ok(OpResult::Grad(g))
            }
            WorkerOp::BatchGrad { w, batch } => {
                self.check_dim(&w)?;
                let batch = self.local(&batch)?;
                let mut g = DenseVector::zeros(self.dim);
                batch_gradient_into(self.loss, &w, &self.rows, &self.labels, &batch, &mut g);
                Ok(OpResult::Grad(g))
            }
            WorkerOp::MgdStep { w, batch, eta } => {
                self.check_dim(&w)?;
                let batch = self.local(&batch)?;
                let mut w = w;
                mgd_step(
                    self.loss,
                    self.reg,
                    &mut w,
                    &self.rows,
                    &self.labels,
                    &batch,
                    eta,
                    &mut self.grad_buf,
                );
                // The counter advance for a single step lives with the
                // orchestrator (it evaluated η); echo t = 0.
                Ok(OpResult::Model { w, t: 0 })
            }
            WorkerOp::MgdEpoch {
                w,
                order,
                batch_size,
                t0,
            } => {
                self.check_dim(&w)?;
                if batch_size == 0 {
                    return Err(NetError::Protocol("MgdEpoch batch_size is zero".into()));
                }
                let order = self.local(&order)?;
                // Mirrors AngelWorker::compute: chunked mgd_step with the
                // schedule advancing per chunk.
                let mut w = w;
                let mut t = t0;
                for chunk in order.chunks(batch_size as usize) {
                    let eta = self.lr.eta(t);
                    mgd_step(
                        self.loss,
                        self.reg,
                        &mut w,
                        &self.rows,
                        &self.labels,
                        chunk,
                        eta,
                        &mut self.grad_buf,
                    );
                    t += 1;
                }
                Ok(OpResult::Model { w, t })
            }
            WorkerOp::PartitionObjective { w } => {
                self.check_dim(&w)?;
                // Loss-only, like the spark.ml line search (the driver
                // adds the regularizer term).
                let v = objective_value_subset(
                    self.loss,
                    Regularizer::None,
                    &w,
                    &self.rows,
                    &self.labels,
                    &self.all,
                );
                Ok(OpResult::Value(v))
            }
        }
    }
}
