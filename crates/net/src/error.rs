//! The typed failure taxonomy of the real execution backend.

use std::fmt;

use mlstar_codec::CodecError;

/// Why a net-backed training run failed. Every variant is a *clean* stop:
/// the orchestrator never hangs on a dead worker and never publishes a
/// partial model.
#[derive(Debug)]
pub enum NetError {
    /// A worker's transport died mid-run (thread exited, socket closed).
    WorkerLost {
        /// Index of the lost worker.
        worker: usize,
    },
    /// The handshake did not complete (bad hello, worker count mismatch).
    Handshake(String),
    /// A peer sent a frame that decodes but violates the protocol (wrong
    /// message kind, batch id mismatch, result arity mismatch).
    Protocol(String),
    /// A frame failed to decode (bad magic, checksum, truncation).
    Codec(CodecError),
    /// Transport-level I/O failure (TCP bind/connect/read/write).
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::WorkerLost { worker } => write!(f, "worker {worker} lost mid-run"),
            NetError::Handshake(why) => write!(f, "handshake failed: {why}"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::Codec(e) => write!(f, "frame codec error: {e}"),
            NetError::Io(why) => write!(f, "transport I/O error: {why}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(NetError::WorkerLost { worker: 3 }
            .to_string()
            .contains("worker 3"));
        assert!(NetError::Handshake("x".into()).to_string().contains('x'));
        assert!(NetError::Protocol("y".into()).to_string().contains('y'));
        assert!(NetError::Io("z".into()).to_string().contains('z'));
        let codec = NetError::Codec(CodecError::BadMagic(7));
        assert!(codec.to_string().contains("magic"));
        assert!(std::error::Error::source(&codec).is_some());
    }
}
