//! Shared command-line handling for the exhibit binaries.

/// Handles the stub-bin command line: `-h`/`--help` prints a usage line
/// and exits 0, `--json` turns on JSON artifact output (see
/// [`crate::report::json_mode`]), any other argument is rejected with
/// exit 2, no arguments falls through to the exhibit itself.
///
/// `bin` is the binary name and `what` a one-line description of the
/// exhibit it regenerates.
pub fn exhibit_args(bin: &str, what: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return;
    }
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!("{bin}: {what}");
        println!();
        println!("USAGE:");
        println!("    cargo run --release -p mlstar-bench --bin {bin} [-- --json]");
        println!();
        println!("OPTIONS:");
        println!("    --json    also write per-round telemetry (compute/comm/idle");
        println!("              breakdown, bytes per pattern) as JSON artifacts");
        println!();
        println!("Writes artifacts to bench_results/ (override with MLSTAR_OUT)");
        println!("and prints the exhibit to stdout.");
        std::process::exit(0);
    }
    let unknown: Vec<&String> = args.iter().filter(|a| a.as_str() != "--json").collect();
    if !unknown.is_empty() {
        eprintln!("{bin}: unexpected arguments {unknown:?} (see --help)");
        std::process::exit(2);
    }
    crate::report::set_json_mode(true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_args_falls_through() {
        // In the test harness argv has no exhibit arguments, but the
        // harness's own flags must not trip the parser, so call the inner
        // logic the way the binaries do only when argv is clean.
        if std::env::args().len() == 1 {
            exhibit_args("demo", "does nothing");
        }
    }
}
