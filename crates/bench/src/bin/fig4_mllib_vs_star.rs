//! Regenerates one paper exhibit; see `mlstar_bench::figures`.
fn main() {
    mlstar_bench::cli::exhibit_args(
        "fig4_mllib_vs_star",
        "regenerates Figure 4 (MLlib vs MLlib* convergence)",
    );
    mlstar_bench::figures::run_fig4();
}
