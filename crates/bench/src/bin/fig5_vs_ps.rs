//! Regenerates one paper exhibit; see `mlstar_bench::figures`.
fn main() {
    mlstar_bench::cli::exhibit_args(
        "fig5_vs_ps",
        "regenerates Figure 5 (MLlib* vs parameter servers)",
    );
    mlstar_bench::figures::run_fig5();
}
