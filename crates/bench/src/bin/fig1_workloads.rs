//! Regenerates one paper exhibit; see `mlstar_bench::figures`.
fn main() {
    mlstar_bench::cli::exhibit_args(
        "fig1_workloads",
        "regenerates Figure 1 (workload characteristics)",
    );
    mlstar_bench::figures::run_fig1();
}
