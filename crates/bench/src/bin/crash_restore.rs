//! Crash-and-restore harness: proves every trainer's checkpoint/resume
//! path is bit-exact.
//!
//! For each of the seven systems the harness runs training to completion
//! with checkpointing on (the *reference* run), then simulates a crash by
//! discarding all in-memory state, reads an **interior** checkpoint file
//! back off disk, resumes it, and compares the resumed run against the
//! reference field by field: convergence trace, per-round telemetry,
//! Gantt spans, update counts, and the final model down to the last
//! weight bit. Any mismatch is a hard failure (non-zero exit).
//!
//! BSP systems restore their full engine state and continue in place;
//! parameter-server systems replay deterministically from clock zero and
//! must pass through the anchor bit-exactly (see
//! `mlstar_core::TrainCheckpoint`). Both paths must end indistinguishable
//! from a run that never stopped.

use std::process::ExitCode;

use mlstar_bench::report::{self, Table};
use mlstar_core::{
    checkpoint_path, AngelConfig, PsSystemConfig, System, TrainCheckpoint, TrainConfig, TrainOutput,
};
use mlstar_data::SyntheticConfig;
use mlstar_glm::LearningRate;
use mlstar_sim::ClusterSpec;

const MAX_ROUNDS: u64 = 8;
const CHECKPOINT_EVERY: u64 = 2;
/// The interior round the crash recovers from: mid-run, not the last file.
const RESUME_ROUND: u64 = 4;

fn usage(code: u8) -> ExitCode {
    println!("crash_restore: checkpoint, crash, resume, and diff every trainer");
    println!();
    println!("USAGE:");
    println!("    cargo run --release -p mlstar-bench --bin crash_restore -- [OPTIONS]");
    println!();
    println!("OPTIONS:");
    println!("    --seed <n>     training seed (default 42)");
    println!("    -h, --help     this message");
    ExitCode::from(code)
}

fn main() -> ExitCode {
    let mut seed = 42u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => return usage(0),
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => seed = s,
                    None => {
                        eprintln!("crash_restore: --seed needs an integer");
                        return usage(2);
                    }
                }
            }
            other => {
                eprintln!("crash_restore: unknown option {other:?}");
                return usage(2);
            }
        }
        i += 1;
    }

    report::banner("crash-and-restore: bit-exact resume across all systems");

    let ds = SyntheticConfig::small("crash-restore", 320, 40).generate();
    let cluster = ClusterSpec::cluster1();
    let cfg = TrainConfig {
        lr: LearningRate::Constant(0.05 / 8.0),
        batch_frac: 0.2,
        max_rounds: MAX_ROUNDS,
        // Stragglers AND node failures, so the crash also has to restore
        // the engine's failure/straggler RNG streams mid-sequence.
        failure_prob: 0.1,
        checkpoint_every: CHECKPOINT_EVERY,
        seed,
        ..TrainConfig::default()
    };
    let ps = PsSystemConfig::default();
    let angel = AngelConfig::default();

    let dir = std::env::temp_dir().join(format!("mlstar_crash_restore_{seed}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");

    let mut table = Table::new(&[
        "system", "mode", "rounds", "trace", "stats", "gantt", "model", "verdict",
    ]);
    let mut all_ok = true;

    for system in System::ALL {
        let reference = system
            .train_checkpointed(&ds, &cluster, &cfg, &ps, &angel, &dir)
            .expect("reference run");

        // The crash: every live structure from the run above is dropped;
        // only the checkpoint files survive.
        let path = checkpoint_path(&dir, system, RESUME_ROUND);
        let ckpt = TrainCheckpoint::read_file(&path).expect("read interior checkpoint");
        let mode = if ckpt.is_ps_anchor() {
            "replay"
        } else {
            "restore"
        };
        let resumed = system
            .resume(&ds, &cluster, &cfg, &ps, &angel, &dir, ckpt)
            .expect("resume");

        let checks = diff(&reference, &resumed);
        let ok = checks.iter().all(|&(_, same)| same);
        all_ok &= ok;
        table.row(&[
            system.name().to_string(),
            mode.to_string(),
            format!("{}", resumed.rounds_run),
            tick(checks[0].1),
            tick(checks[1].1),
            tick(checks[2].1),
            tick(checks[3].1),
            if ok { "bit-exact" } else { "DIVERGED" }.to_string(),
        ]);
    }
    table.print();

    std::fs::remove_dir_all(&dir).ok();
    if all_ok {
        println!("\nall systems resumed bit-identically to never having crashed");
        ExitCode::SUCCESS
    } else {
        eprintln!("\ncrash_restore: at least one system diverged after resume");
        ExitCode::FAILURE
    }
}

fn tick(ok: bool) -> String {
    if ok { "ok" } else { "MISMATCH" }.to_string()
}

/// Field-by-field comparison of two runs; floats are compared by bit
/// pattern, never by tolerance.
fn diff(a: &TrainOutput, b: &TrainOutput) -> [(&'static str, bool); 4] {
    let model_same = a.model.weights().as_slice().len() == b.model.weights().as_slice().len()
        && a.model
            .weights()
            .as_slice()
            .iter()
            .zip(b.model.weights().as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
    [
        ("trace", a.trace == b.trace),
        (
            "stats",
            a.round_stats == b.round_stats
                && a.total_updates == b.total_updates
                && a.rounds_run == b.rounds_run
                && a.converged == b.converged
                && a.host_threads == b.host_threads,
        ),
        ("gantt", a.gantt.spans() == b.gantt.spans()),
        ("model", model_same),
    ]
}
