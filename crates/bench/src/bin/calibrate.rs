//! Hyperparameter calibration utility: sweeps learning rates for one
//! system on one preset and prints time/steps to the reference target.
//!
//! Usage: `cargo run --release -p mlstar-bench --bin calibrate [preset] [system]`
//! where preset ∈ {avazu, url, kddb, kdd12, wx} and system ∈
//! {mllib, ma, star, petuum, petuum_star, angel}. Defaults: kdd12, mllib.

use mlstar_core::{reference_optimum, System, TrainConfig};
use mlstar_data::catalog;
use mlstar_glm::{LearningRate, Loss, Regularizer};
use mlstar_sim::ClusterSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().skip(1).any(|a| a == "-h" || a == "--help") {
        println!("calibrate: sweeps learning rates for one system on one preset");
        println!();
        println!("USAGE:");
        println!("    cargo run --release -p mlstar-bench --bin calibrate [preset] [system] [reg]");
        println!();
        println!("    preset ∈ {{avazu, url, kddb, kdd12, wx}}   (default kdd12)");
        println!("    system ∈ {{mllib, ma, star, petuum, petuum_star, angel}}   (default mllib)");
        println!("    reg    ∈ {{none, l2}}   (default none)");
        return;
    }
    let preset_name = args.get(1).map(String::as_str).unwrap_or("kdd12");
    let system_name = args.get(2).map(String::as_str).unwrap_or("mllib");
    let reg = match args.get(3).map(String::as_str) {
        Some("l2") => Regularizer::L2 { lambda: 0.1 },
        _ => Regularizer::None,
    };
    let preset = match preset_name {
        "avazu" => catalog::avazu_like(),
        "url" => catalog::url_like(),
        "kddb" => catalog::kddb_like(),
        "wx" => catalog::wx_like(),
        _ => catalog::kdd12_like(),
    };
    let system = match system_name {
        "ma" => System::MllibMa,
        "star" => System::MllibStar,
        "petuum" => System::Petuum,
        "petuum_star" => System::PetuumStar,
        "angel" => System::Angel,
        _ => System::Mllib,
    };
    let ds = preset.generate();
    let opt = reference_optimum(&ds, Loss::Hinge, reg, 25, 42);
    println!(
        "preset {} | system {} | {} | reference optimum {opt:.4}",
        preset.name,
        system.name(),
        reg.label()
    );
    let cluster = ClusterSpec::cluster1();
    let (rounds, eval_every, batch_frac) = match system {
        System::Mllib => (6000, 50, 0.01),
        System::MllibMa | System::MllibStar => (40, 1, 1.0),
        System::Petuum | System::PetuumStar => (1200, 20, 0.05),
        System::Angel => (120, 1, 0.01),
        System::SparkMl => (30, 1, 1.0),
    };
    for eta in [0.003, 0.01, 0.03, 0.1, 0.3, 1.0] {
        let cfg = TrainConfig {
            loss: Loss::Hinge,
            reg,
            lr: LearningRate::Constant(eta),
            batch_frac,
            max_rounds: rounds,
            eval_every,
            target_objective: None,
            tree_fanin: 3,
            seed: 42,
            ..TrainConfig::default()
        };
        let out = system.train_default(&ds, &cluster, &cfg);
        let best = out.trace.best_objective().unwrap_or(f64::NAN);
        let target = opt.min(best) + 0.01;
        println!(
            "eta {eta:>6}: best {best:.4} | to {target:.3}: steps {:?} time {:?}",
            out.trace.steps_to_reach(opt + 0.01),
            out.trace
                .time_to_reach(opt + 0.01)
                .map(|t| format!("{t:.1}s")),
        );
    }
}
