//! Exercises the cross-validated lambda-path workload end to end: solves
//! a warm-started coordinate-descent λ path over K folds, schedules the
//! fold chains as parallel round-engine jobs at several executor counts,
//! and reports the per-λ validation curve plus scheduling telemetry.
//!
//! The executor sweep doubles as a live determinism check: fold models,
//! validation curves and the chosen λ must be bit-identical at every
//! executor count — only the simulated timeline may change.

use std::time::Instant;

use mlstar_bench::report::{self, PathCvSummary, Table};
use mlstar_core::{cross_validate_path, CvConfig, CvResult};
use mlstar_data::{catalog, SyntheticConfig};
use mlstar_glm::{Loss, PathConfig};
use mlstar_sim::{ClusterSpec, NetworkSpec, NodeSpec};

fn usage(code: i32) -> ! {
    println!("path_bench: K-fold cross-validated λ paths as a cluster workload");
    println!();
    println!("USAGE:");
    println!("    cargo run --release -p mlstar-bench --bin path_bench -- [OPTIONS]");
    println!();
    println!("OPTIONS:");
    println!("    --dataset <name>   synthetic (default), avazu, url, kddb, kdd12");
    println!("    --folds <k>        cross-validation folds (default 5)");
    println!("    --lambdas <n>      grid size (default 20)");
    println!("    --l1-ratio <a>     elastic-net ℓ₁ ratio in [0,1] (default 1.0)");
    println!("    --smoke            tiny CI configuration (5-λ path, 3 folds)");
    println!("    --json             also write the telemetry as a JSON artifact");
    println!("    -h, --help         this message");
    println!();
    println!("Writes artifacts to bench_results/ (override with MLSTAR_OUT).");
    std::process::exit(code);
}

struct Args {
    dataset: String,
    folds: usize,
    n_lambdas: usize,
    l1_ratio: f64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        dataset: "synthetic".to_owned(),
        folds: 5,
        n_lambdas: 20,
        l1_ratio: 1.0,
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: usize, what: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("path_bench: {what} needs a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => usage(0),
            "--json" => report::set_json_mode(true),
            "--smoke" => out.smoke = true,
            "--dataset" => {
                i += 1;
                out.dataset = value(&args, i, "--dataset");
            }
            "--folds" => {
                i += 1;
                out.folds = value(&args, i, "--folds").parse().unwrap_or_else(|_| {
                    eprintln!("path_bench: --folds needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--lambdas" => {
                i += 1;
                out.n_lambdas = value(&args, i, "--lambdas").parse().unwrap_or_else(|_| {
                    eprintln!("path_bench: --lambdas needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--l1-ratio" => {
                i += 1;
                out.l1_ratio = value(&args, i, "--l1-ratio").parse().unwrap_or_else(|_| {
                    eprintln!("path_bench: --l1-ratio needs a number in [0,1]");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("path_bench: unexpected argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if out.smoke {
        out.folds = 3;
        out.n_lambdas = 5;
    }
    out
}

fn load_dataset(name: &str, smoke: bool) -> mlstar_data::SparseDataset {
    let preset = match name {
        "synthetic" if smoke => SyntheticConfig::small("path-bench-smoke", 120, 24),
        "synthetic" => SyntheticConfig::small("path-bench", 1500, 96),
        "avazu" => catalog::avazu_like().scaled_down(20_000),
        "url" => catalog::url_like().scaled_down(20_000),
        "kddb" => catalog::kddb_like().scaled_down(200_000),
        "kdd12" => catalog::kdd12_like().scaled_down(200_000),
        other => {
            eprintln!("path_bench: unknown dataset {other:?} (see --help)");
            std::process::exit(2);
        }
    };
    preset.generate()
}

/// The pieces of a [`CvResult`] that must not depend on the cluster.
#[derive(Debug, PartialEq)]
struct ModelFingerprint {
    weight_bits: Vec<u64>,
    loss_bits: Vec<u64>,
    best_lambda_idx: usize,
}

fn model_fingerprint(cv: &CvResult) -> ModelFingerprint {
    ModelFingerprint {
        weight_bits: cv
            .folds
            .iter()
            .flat_map(|f| f.points.iter())
            .flat_map(|p| p.weights.as_slice().iter().map(|w| w.to_bits()))
            .collect(),
        loss_bits: cv.mean_val_loss.iter().map(|l| l.to_bits()).collect(),
        best_lambda_idx: cv.best_lambda_idx,
    }
}

fn main() {
    let args = parse_args();
    let ds = load_dataset(&args.dataset, args.smoke);
    report::banner(&format!(
        "path_bench — {}: {} examples × {} features, {} folds × {} λs (α={})",
        args.dataset,
        ds.len(),
        ds.num_features(),
        args.folds,
        args.n_lambdas,
        args.l1_ratio,
    ));

    let cfg = CvConfig {
        loss: Loss::Logistic,
        folds: args.folds,
        path: PathConfig {
            n_lambdas: args.n_lambdas,
            l1_ratio: args.l1_ratio,
            ..PathConfig::default()
        },
        seed: 42,
    };
    let executor_sweep: &[usize] = if args.smoke { &[2, 4] } else { &[2, 4, 8] };

    let mut table = Table::new(&[
        "executors",
        "jobs",
        "rounds",
        "sweeps",
        "best λ",
        "val loss",
        "makespan",
        "wall ms",
    ]);
    let mut summaries: Vec<(String, PathCvSummary)> = Vec::new();
    let mut baseline: Option<(ModelFingerprint, CvResult)> = None;
    for &executors in executor_sweep {
        let cluster = ClusterSpec::uniform(executors, NodeSpec::standard(), NetworkSpec::gbps1());
        let wall = Instant::now();
        let cv = cross_validate_path(&ds, &cluster, &cfg).expect("cross-validated path");
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let fp = model_fingerprint(&cv);
        match &baseline {
            None => baseline = Some((fp, cv.clone())),
            Some((b, _)) => assert_eq!(
                b, &fp,
                "fold models, validation curves and best λ must be bit-identical \
                 across executor counts"
            ),
        }
        let total_sweeps: usize = cv.jobs.iter().map(|j| j.sweeps).sum();
        table.row(&[
            executors.to_string(),
            cv.jobs.len().to_string(),
            cv.round_phases.len().to_string(),
            total_sweeps.to_string(),
            format!("{:.5}", cv.best_lambda),
            format!("{:.5}", cv.mean_val_loss[cv.best_lambda_idx]),
            format!("{:.3}s", cv.makespan_s),
            format!("{wall_ms:.1}"),
        ]);
        summaries.push((
            format!("executors={executors}"),
            PathCvSummary {
                executors,
                folds: cfg.folds,
                n_lambdas: cv.lambdas.len(),
                l1_ratio: cfg.path.l1_ratio,
                lambda_max: cv.lambda_max,
                best_lambda: cv.best_lambda,
                best_lambda_idx: cv.best_lambda_idx,
                best_val_loss: cv.mean_val_loss[cv.best_lambda_idx],
                total_sweeps,
                jobs: cv.jobs.len(),
                makespan_s: cv.makespan_s,
                wall_ms,
            },
        ));
    }
    table.print();
    println!("\nmodels, validation curves and best λ are bit-identical across the sweep ✔");

    // The regularization path at a glance (from the baseline run).
    let (_, cv) = baseline.expect("sweep was nonempty");
    println!("\n    k |        λ | mean val loss | mean nnz");
    for (k, &lambda) in cv.lambdas.iter().enumerate() {
        let mean_nnz: f64 =
            cv.folds.iter().map(|f| f.points[k].nnz as f64).sum::<f64>() / cv.folds.len() as f64;
        println!(
            "{marker} {k:>3} | {lambda:>8.5} | {:>13.6} | {mean_nnz:>8.1}",
            cv.mean_val_loss[k],
            marker = if k == cv.best_lambda_idx { "→" } else { " " },
        );
    }

    if report::json_mode() {
        let json = report::path_stats_json("path_bench", &summaries);
        let path = report::write_artifact("path_bench.json", &json);
        println!("\nwrote {}", path.display());
    }
}
