//! Regenerates one paper exhibit; see `mlstar_bench::figures`.
fn main() {
    mlstar_bench::cli::exhibit_args(
        "fig3_gantt",
        "regenerates Figure 3 (per-round Gantt timelines)",
    );
    mlstar_bench::figures::run_fig3();
}
