//! Regenerates one paper exhibit; see `mlstar_bench::figures`.
fn main() {
    mlstar_bench::cli::exhibit_args(
        "fig6_scalability",
        "regenerates Figure 6 (scalability with cluster size)",
    );
    mlstar_bench::figures::run_fig6();
}
