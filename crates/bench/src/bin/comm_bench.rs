//! Convergence vs. communicated bytes for the compressed wire path.
//!
//! Trains MLlib\* on an L1-regularized workload once per communication
//! mode — the forced-dense baseline, the lossless adaptive dense↔sparse
//! switch, and the lossy sparsified/quantized encodings with error
//! feedback — and reports, for each mode, the total bytes the encoders
//! actually put on the wire and the final objective.
//!
//! Two contracts are asserted, not just reported:
//!
//! * the lossless adaptive mode must reproduce the dense baseline's model
//!   **bit for bit** (objective gap exactly zero), and
//! * at that matched objective it must move at least 5× fewer bytes.
//!
//! Always writes `bench_results/comm_bench.json` (override the directory
//! with `MLSTAR_OUT`) with the per-mode totals and the full
//! objective-vs-cumulative-bytes curve of every mode.

use mlstar_bench::report::{self, Table};
use mlstar_collectives::{CompressionConfig, FrameSwitch, Sparsifier};
use mlstar_core::{AngelConfig, PsSystemConfig, System, TrainConfig, TrainOutput};
use mlstar_data::SyntheticConfig;
use mlstar_glm::{LearningRate, Loss, Regularizer};
use mlstar_sim::{ClusterSpec, NetworkSpec, NodeSpec};

fn usage(code: i32) -> ! {
    println!("comm_bench: convergence vs. communicated bytes for compressed collectives");
    println!();
    println!("USAGE:");
    println!("    cargo run --release -p mlstar-bench --bin comm_bench -- [OPTIONS]");
    println!();
    println!("OPTIONS:");
    println!("    --workers <k>        simulated executors (default 4)");
    println!("    --rounds <n>         communication rounds (default 12)");
    println!("    --lambda <x>         L1 strength (default 0.2)");
    println!("    --smoke              tiny CI configuration (6 rounds, small data)");
    println!("    --json               also mirror the JSON report to stdout");
    println!("    -h, --help           this message");
    println!();
    println!("Always writes bench_results/comm_bench.json (override dir with");
    println!("MLSTAR_OUT) with per-mode byte totals and convergence-vs-bytes curves.");
    std::process::exit(code);
}

struct Args {
    workers: usize,
    rounds: u64,
    lambda: f64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        workers: 4,
        rounds: 12,
        lambda: 0.2,
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |args: &[String], i: usize, what: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("comm_bench: {what} needs a value");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => usage(0),
            "--json" => report::set_json_mode(true),
            "--smoke" => out.smoke = true,
            "--workers" => {
                i += 1;
                out.workers = value(&args, i, "--workers").parse().unwrap_or_else(|_| {
                    eprintln!("comm_bench: --workers needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--rounds" => {
                i += 1;
                out.rounds = value(&args, i, "--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("comm_bench: --rounds needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--lambda" => {
                i += 1;
                out.lambda = value(&args, i, "--lambda").parse().unwrap_or_else(|_| {
                    eprintln!("comm_bench: --lambda needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("comm_bench: unexpected argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if out.smoke {
        out.rounds = 6;
    }
    out
}

/// One communication policy under test.
struct Mode {
    name: &'static str,
    comp: CompressionConfig,
}

fn modes(k: usize) -> Vec<Mode> {
    let adaptive = CompressionConfig {
        switch: FrameSwitch::Adaptive,
        ..CompressionConfig::default()
    };
    vec![
        Mode {
            name: "dense",
            comp: CompressionConfig::default(),
        },
        Mode {
            name: "adaptive_exact",
            comp: adaptive,
        },
        Mode {
            name: "topk",
            comp: CompressionConfig {
                sparsifier: Sparsifier::TopK { k },
                ..adaptive
            },
        },
        Mode {
            name: "topk_q8",
            comp: CompressionConfig {
                sparsifier: Sparsifier::TopK { k },
                quantize: true,
                ..adaptive
            },
        },
        Mode {
            name: "threshold_q8",
            comp: CompressionConfig {
                sparsifier: Sparsifier::Threshold { tau: 1e-3 },
                quantize: true,
                ..adaptive
            },
        },
    ]
}

/// Per-mode results: the run plus its derived byte totals.
struct ModeRun {
    name: &'static str,
    out: TrainOutput,
    total_bytes: u64,
}

fn final_objective(run: &TrainOutput) -> f64 {
    run.trace
        .points
        .last()
        .map(|p| p.objective)
        .unwrap_or(f64::INFINITY)
}

/// `objective` joined with the bytes moved up to each evaluation step.
fn curve_json(run: &ModeRun) -> String {
    let mut cum: Vec<u64> = Vec::with_capacity(run.out.round_stats.len());
    let mut total = 0u64;
    for rs in &run.out.round_stats {
        total += rs.bytes.total();
        cum.push(total);
    }
    let points: Vec<String> = run
        .out
        .trace
        .points
        .iter()
        .map(|p| {
            let idx = (p.step as usize).min(cum.len().saturating_sub(1));
            let bytes = if cum.is_empty() { 0 } else { cum[idx] };
            format!(
                "{{\"step\":{},\"cum_bytes\":{},\"objective\":{}}}",
                p.step, bytes, p.objective
            )
        })
        .collect();
    format!("[{}]", points.join(","))
}

fn json_report(args: &Args, dense: &ModeRun, runs: &[ModeRun]) -> String {
    let dense_obj = final_objective(&dense.out);
    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            let reduction = dense.total_bytes as f64 / r.total_bytes.max(1) as f64;
            format!(
                concat!(
                    "{{\"mode\":\"{}\",\"total_bytes\":{},\"byte_reduction\":{},",
                    "\"final_objective\":{},\"objective_gap\":{},\"curve\":{}}}"
                ),
                r.name,
                r.total_bytes,
                reduction,
                final_objective(&r.out),
                (final_objective(&r.out) - dense_obj).abs(),
                curve_json(r),
            )
        })
        .collect();
    format!(
        "{{\"report\":\"comm_bench\",\"system\":\"{}\",\"workers\":{},\"rounds\":{},\
         \"lambda\":{},\"modes\":[{}]}}\n",
        System::MllibStar.name(),
        args.workers,
        args.rounds,
        args.lambda,
        entries.join(","),
    )
}

fn main() {
    let args = parse_args();
    let (rows, feats) = if args.smoke { (240, 256) } else { (600, 1024) };
    // Signal concentrated on a small informative set, like the paper's
    // CTR-style workloads: the L1 run then converges onto a sparse
    // support, which is what the adaptive switch exploits.
    let mut syn = SyntheticConfig::small("comm-bench", rows, feats);
    syn.informative_features = feats / 32;
    syn.popular_fraction = 0.9;
    let ds = syn.generate();
    let cluster = ClusterSpec::uniform(args.workers, NodeSpec::standard(), NetworkSpec::gbps1());
    let ps = PsSystemConfig::default();
    let angel = AngelConfig::default();
    report::banner(&format!(
        "comm_bench — MLlib* with L1 λ={}: {} examples × {} features, {} workers × {} rounds",
        args.lambda,
        ds.len(),
        ds.num_features(),
        args.workers,
        args.rounds,
    ));

    let base_cfg = TrainConfig {
        loss: Loss::Hinge,
        reg: Regularizer::L1 {
            lambda: args.lambda,
        },
        lr: LearningRate::InvSqrt(0.1),
        max_rounds: args.rounds,
        seed: 42,
        ..TrainConfig::default()
    };

    let runs: Vec<ModeRun> = modes(feats / 64)
        .into_iter()
        .map(|m| {
            let cfg = TrainConfig {
                compression: m.comp,
                ..base_cfg.clone()
            };
            let out = System::MllibStar.train(&ds, &cluster, &cfg, &ps, &angel);
            let total_bytes = out.round_stats.iter().map(|rs| rs.bytes.total()).sum();
            ModeRun {
                name: m.name,
                out,
                total_bytes,
            }
        })
        .collect();
    let dense = &runs[0];
    let dense_obj = final_objective(&dense.out);

    let mut table = Table::new(&[
        "mode",
        "total bytes",
        "reduction",
        "objective",
        "gap vs dense",
    ]);
    for r in &runs {
        let reduction = dense.total_bytes as f64 / r.total_bytes.max(1) as f64;
        table.row(&[
            r.name.into(),
            format!("{}", r.total_bytes),
            format!("{reduction:.2}x"),
            format!("{:.6}", final_objective(&r.out)),
            format!("{:.3e}", (final_objective(&r.out) - dense_obj).abs()),
        ]);
    }
    table.print();

    // Contract 1: the lossless switch changes bytes, never math.
    let exact = &runs[1];
    let dense_bits: Vec<u64> = dense
        .out
        .model
        .weights()
        .as_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    let exact_bits: Vec<u64> = exact
        .out
        .model
        .weights()
        .as_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    if dense_bits != exact_bits {
        eprintln!("comm_bench: adaptive_exact model is not bit-identical to the dense baseline");
        std::process::exit(1);
    }
    println!("\nadaptive_exact model is bit-identical to the dense baseline ✔");

    // Contract 2: at that matched objective, ≥5× fewer bytes on the wire.
    let reduction = dense.total_bytes as f64 / exact.total_bytes.max(1) as f64;
    if reduction < 5.0 {
        eprintln!(
            "comm_bench: adaptive_exact moved {} bytes vs dense {} — only {reduction:.2}x \
             reduction (need ≥5x at matched objective)",
            exact.total_bytes, dense.total_bytes
        );
        std::process::exit(1);
    }
    println!("adaptive_exact moves {reduction:.2}x fewer bytes at a matched objective ✔");

    let json = json_report(&args, dense, &runs);
    let path = report::write_artifact("comm_bench.json", &json);
    println!("wrote {}", path.display());
    if report::json_mode() {
        print!("{json}");
    }
}
