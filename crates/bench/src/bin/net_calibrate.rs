//! Calibrates the simulator's cost model against a *real* training run:
//! trains one system on the `mlstar-net` thread backend (in-process
//! channels or loopback TCP), fits the linear cost-model rates
//! (GFLOP/s, bytes/s, per-message latency) from the measured per-worker
//! round timings by least squares, re-simulates the identical training
//! under the fitted cluster, and reports measured vs. simulated makespan.
//!
//! The run doubles as a live determinism check: the net-backed weights
//! must be bit-identical to the re-simulated weights (the calibrated
//! cluster changes only the simulated clock, never the math).

use mlstar_bench::report::{self, Table};
use mlstar_core::{AngelConfig, PsSystemConfig, System, TrainConfig};
use mlstar_data::SyntheticConfig;
use mlstar_net::{train_net, NetConfig, NetTrainOutput, TransportKind};
use mlstar_sim::{fit_rates, ClusterSpec, FittedRates, NetworkSpec, NodeSpec, RateSample};

fn usage(code: i32) -> ! {
    println!("net_calibrate: fit simulator cost-model rates from a real net-backend run");
    println!();
    println!("USAGE:");
    println!("    cargo run --release -p mlstar-bench --bin net_calibrate -- [OPTIONS]");
    println!();
    println!("OPTIONS:");
    println!("    --system <name>      mllib, ma, star (default), sparkml, petuum,");
    println!("                         petuum_star, angel");
    println!("    --transport <kind>   channel (default) or tcp (loopback)");
    println!("    --workers <k>        worker threads (default 4)");
    println!("    --rounds <n>         communication rounds (default 8)");
    println!("    --smoke              tiny CI configuration (4 rounds, small data)");
    println!("    --json               also mirror the JSON report to stdout");
    println!("    -h, --help           this message");
    println!();
    println!("Always writes bench_results/net_calibrate.json (override dir with");
    println!("MLSTAR_OUT) containing the fitted rates and the makespan error.");
    std::process::exit(code);
}

struct Args {
    system: System,
    transport: TransportKind,
    workers: usize,
    rounds: u64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        system: System::MllibStar,
        transport: TransportKind::Channel,
        workers: 4,
        rounds: 8,
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |args: &[String], i: usize, what: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("net_calibrate: {what} needs a value");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => usage(0),
            "--json" => report::set_json_mode(true),
            "--smoke" => out.smoke = true,
            "--system" => {
                i += 1;
                out.system = match value(&args, i, "--system").as_str() {
                    "mllib" => System::Mllib,
                    "ma" => System::MllibMa,
                    "star" => System::MllibStar,
                    "sparkml" => System::SparkMl,
                    "petuum" => System::Petuum,
                    "petuum_star" => System::PetuumStar,
                    "angel" => System::Angel,
                    other => {
                        eprintln!("net_calibrate: unknown system {other:?} (see --help)");
                        std::process::exit(2);
                    }
                };
            }
            "--transport" => {
                i += 1;
                out.transport = match value(&args, i, "--transport").as_str() {
                    "channel" => TransportKind::Channel,
                    "tcp" => TransportKind::Tcp,
                    other => {
                        eprintln!("net_calibrate: unknown transport {other:?} (see --help)");
                        std::process::exit(2);
                    }
                };
            }
            "--workers" => {
                i += 1;
                out.workers = value(&args, i, "--workers").parse().unwrap_or_else(|_| {
                    eprintln!("net_calibrate: --workers needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--rounds" => {
                i += 1;
                out.rounds = value(&args, i, "--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("net_calibrate: --rounds needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("net_calibrate: unexpected argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if out.smoke {
        out.rounds = 4;
    }
    out
}

/// Flattens the per-batch, per-worker measurements into regression
/// samples for [`fit_rates`].
fn samples(run: &NetTrainOutput) -> Vec<RateSample> {
    run.batches
        .iter()
        .flat_map(|b| b.workers.iter())
        .map(|w| RateSample {
            flops: w.flops,
            bytes: (w.bytes_out + w.bytes_in) as f64,
            messages: w.messages as f64,
            seconds: w.turnaround_s,
        })
        .collect()
}

fn transport_name(t: TransportKind) -> &'static str {
    match t {
        TransportKind::Channel => "channel",
        TransportKind::Tcp => "tcp",
    }
}

fn json_report(
    args: &Args,
    run: &NetTrainOutput,
    rates: &FittedRates,
    measured_s: f64,
    simulated_s: f64,
    error_pct: f64,
) -> String {
    format!(
        concat!(
            "{{\"report\":\"net_calibrate\",\"system\":\"{}\",\"transport\":\"{}\",",
            "\"workers\":{},\"rounds\":{},\"dispatch_batches\":{},",
            "\"rates\":{{\"gflops\":{},\"bandwidth_bps\":{},\"latency_s\":{}}},",
            "\"makespan\":{{\"measured_s\":{},\"simulated_s\":{},\"error_pct\":{}}},",
            "\"wall_s\":{},\"batches_per_sec\":{}}}\n"
        ),
        args.system.name(),
        transport_name(args.transport),
        args.workers,
        run.output.rounds_run,
        run.batches.len(),
        rates.gflops,
        rates.bandwidth_bps,
        rates.latency_s,
        measured_s,
        simulated_s,
        error_pct,
        run.wall_s,
        run.batches_per_sec(),
    )
}

fn main() {
    let args = parse_args();
    let (rows, feats) = if args.smoke { (180, 24) } else { (600, 48) };
    let ds = SyntheticConfig::small("net-calibrate", rows, feats).generate();
    let cluster = ClusterSpec::uniform(args.workers, NodeSpec::standard(), NetworkSpec::gbps1());
    let cfg = TrainConfig {
        max_rounds: args.rounds,
        ..TrainConfig::default()
    };
    let ps = PsSystemConfig::default();
    let angel = AngelConfig::default();
    report::banner(&format!(
        "net_calibrate — {} on {} transport: {} examples × {} features, {} workers × {} rounds",
        args.system.name(),
        transport_name(args.transport),
        ds.len(),
        ds.num_features(),
        args.workers,
        args.rounds,
    ));

    // The measured run on real threads, plus two smaller probe runs.
    // Within one balanced run every worker ships the same bytes per
    // round, which leaves the regression rank-deficient; varying the
    // dataset size varies the bytes column so all three rates are
    // identifiable.
    let net_cfg = NetConfig {
        transport: args.transport,
        ..NetConfig::default()
    };
    let mut runs: Vec<NetTrainOutput> = Vec::new();
    for (i, probe_rows) in [rows, rows * 2 / 3, rows / 3].into_iter().enumerate() {
        let probe_ds = if i == 0 {
            ds.clone()
        } else {
            SyntheticConfig::small("net-calibrate", probe_rows, feats).generate()
        };
        match train_net(
            args.system,
            &probe_ds,
            &cluster,
            &cfg,
            &ps,
            &angel,
            &net_cfg,
        ) {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("net_calibrate: net-backend run failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let run = &runs[0];
    let measured_s: f64 = run.batches.iter().map(|b| b.wall_s).sum();
    println!(
        "measured: {} dispatch batches in {:.3}s wall ({:.1} batches/s), {:.4}s inside rounds",
        run.batches.len(),
        run.wall_s,
        run.batches_per_sec(),
        measured_s,
    );

    // Fit the cost model from the per-worker round timings of all runs.
    let samples: Vec<RateSample> = runs.iter().flat_map(samples).collect();
    let Some(rates) = fit_rates(&samples) else {
        eprintln!(
            "net_calibrate: rate fit is rank-deficient ({} samples) — need more \
             workers or rounds",
            samples.len()
        );
        std::process::exit(1);
    };

    // Re-simulate the identical training under the fitted cluster and
    // compare makespans. Only the simulated clock may differ: the weights
    // must stay bit-identical to the net-backed run.
    let fitted_cluster = rates.cluster(args.workers);
    let resim = args.system.train(&ds, &fitted_cluster, &cfg, &ps, &angel);
    assert_eq!(
        run.output.model.weights().as_slice(),
        resim.model.weights().as_slice(),
        "weights must be bit-identical between the net run and the re-simulation"
    );
    let simulated_s: f64 = resim.round_stats.iter().map(|r| r.elapsed_s).sum();
    let error_pct = if measured_s > 0.0 {
        (simulated_s - measured_s).abs() / measured_s * 100.0
    } else {
        f64::INFINITY
    };

    let mut table = Table::new(&["quantity", "value"]);
    table.row(&["fitted GFLOP/s".into(), format!("{:.3}", rates.gflops)]);
    table.row(&[
        "fitted bandwidth".into(),
        format!("{:.1} MB/s", rates.bandwidth_bps / 1e6),
    ]);
    table.row(&[
        "fitted latency".into(),
        format!("{:.1} µs", rates.latency_s * 1e6),
    ]);
    table.row(&["measured makespan".into(), format!("{measured_s:.4}s")]);
    table.row(&["simulated makespan".into(), format!("{simulated_s:.4}s")]);
    table.row(&["makespan error".into(), format!("{error_pct:.1}%")]);
    table.print();
    println!("\nweights are bit-identical between net run and re-simulation ✔");

    let json = json_report(&args, run, &rates, measured_s, simulated_s, error_pct);
    let path = report::write_artifact("net_calibrate.json", &json);
    println!("wrote {}", path.display());
    if report::json_mode() {
        print!("{json}");
    }
}
