//! End-to-end throughput snapshot across the stack, published as a CI
//! artifact (`BENCH_perf.json`): training rows/s on the simulated path,
//! serving predictions/s, codec encode+decode bytes/s, and measured
//! dispatch rounds/s on the real-thread net backend.
//!
//! The numbers are wall-clock measurements of this host — they exist to
//! catch order-of-magnitude regressions between commits, not to be
//! portable benchmarks.

use std::time::Instant;

use mlstar_bench::report::{self, Table};
use mlstar_core::{System, TrainConfig};
use mlstar_data::SyntheticConfig;
use mlstar_linalg::DenseVector;
use mlstar_net::{train_net, NetConfig};
use mlstar_serve::{BatchPolicy, ModelArtifact, QueryWorkload, ScoringEngine};
use mlstar_sim::{ClusterSpec, NetworkSpec, NodeSpec};

fn usage(code: i32) -> ! {
    println!("perf_bench: whole-stack throughput snapshot (train/serve/codec/net)");
    println!();
    println!("USAGE:");
    println!("    cargo run --release -p mlstar-bench --bin perf_bench -- [OPTIONS]");
    println!();
    println!("OPTIONS:");
    println!("    --smoke       tiny CI configuration");
    println!("    --json        also mirror the JSON report to stdout");
    println!("    -h, --help    this message");
    println!();
    println!("Always writes bench_results/BENCH_perf.json (override dir with");
    println!("MLSTAR_OUT).");
    std::process::exit(code);
}

fn parse_args() -> bool {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-h" | "--help" => usage(0),
            "--json" => report::set_json_mode(true),
            "--smoke" => smoke = true,
            other => {
                eprintln!("perf_bench: unexpected argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
    }
    smoke
}

fn main() {
    let smoke = parse_args();
    let (rows, feats, rounds, requests, codec_iters) = if smoke {
        (240, 32, 6u64, 512usize, 2_000usize)
    } else {
        (2_000, 64, 12, 2_048, 20_000)
    };
    let ds = SyntheticConfig::small("perf-bench", rows, feats).generate();
    let cluster = ClusterSpec::uniform(4, NodeSpec::standard(), NetworkSpec::gbps1());
    let system = System::MllibStar;
    let cfg = TrainConfig {
        max_rounds: rounds,
        ..TrainConfig::default()
    };
    report::banner(&format!(
        "perf_bench — {} examples × {} features, {} rounds on {}",
        ds.len(),
        ds.num_features(),
        rounds,
        system.name(),
    ));

    // 1. Training throughput on the simulated path: every round sweeps
    //    each partition once, so rows processed = rounds × dataset size.
    let wall = Instant::now();
    let out = system.train_default(&ds, &cluster, &cfg);
    let train_s = wall.elapsed().as_secs_f64();
    let rows_trained = out.rounds_run * ds.len() as u64;
    let rows_per_sec = rows_trained as f64 / train_s;

    // 2. Serving throughput: score a seeded open-loop workload.
    let artifact = ModelArtifact::from_run(system, &cfg, &out, &ds).expect("serving artifact");
    let workload = QueryWorkload {
        num_requests: requests,
        ..QueryWorkload::default()
    };
    let reqs = workload.generate(&ds);
    let engine = ScoringEngine::for_artifact(&artifact, BatchPolicy::default(), 2);
    let wall = Instant::now();
    let run = engine.run(&reqs).expect("serve run");
    let serve_s = wall.elapsed().as_secs_f64();
    let preds_per_sec = run.predictions.len() as f64 / serve_s;

    // 3. Codec throughput: dense-vector encode + decode round trips.
    let v = DenseVector::from_vec((0..feats).map(|i| i as f64 * 0.25 - 1.0).collect());
    let frame = mlstar_collectives::wire::encode_dense(&v);
    let frame_bytes = frame.len();
    let wall = Instant::now();
    let mut checksum = 0.0f64;
    for _ in 0..codec_iters {
        let enc = mlstar_collectives::wire::encode_dense(&v);
        let dec = mlstar_collectives::wire::decode_dense(&enc).expect("decode dense");
        checksum += dec.as_slice()[0];
    }
    let codec_s = wall.elapsed().as_secs_f64();
    assert!(checksum.is_finite());
    // Each iteration writes the frame once and reads it once.
    let codec_bytes = 2 * frame_bytes * codec_iters;
    let codec_bytes_per_sec = codec_bytes as f64 / codec_s;

    // 4. Net backend: measured dispatch rounds/s on real worker threads.
    let net_run = train_net(
        system,
        &ds,
        &cluster,
        &cfg,
        &Default::default(),
        &Default::default(),
        &NetConfig::default(),
    )
    .expect("net-backend run");
    assert_eq!(
        out.model.weights().as_slice(),
        net_run.output.model.weights().as_slice(),
        "net backend must match the simulated weights bit-for-bit"
    );
    let net_rounds_per_sec = net_run.batches_per_sec();

    let mut table = Table::new(&["stage", "throughput", "detail"]);
    table.row(&[
        "train (sim path)".into(),
        format!("{rows_per_sec:.0} rows/s"),
        format!("{rows_trained} rows in {train_s:.3}s"),
    ]);
    table.row(&[
        "serve".into(),
        format!("{preds_per_sec:.0} preds/s"),
        format!("{} predictions in {serve_s:.3}s", run.predictions.len()),
    ]);
    table.row(&[
        "codec".into(),
        format!("{:.1} MB/s", codec_bytes_per_sec / 1e6),
        format!("{codec_iters} × {frame_bytes}B round trips in {codec_s:.3}s"),
    ]);
    table.row(&[
        "net backend".into(),
        format!("{net_rounds_per_sec:.1} rounds/s"),
        format!(
            "{} dispatch batches in {:.3}s",
            net_run.batches.len(),
            net_run.wall_s
        ),
    ]);
    table.print();
    println!("\nnet-backend weights match the simulated run bit-for-bit ✔");

    let json = format!(
        concat!(
            "{{\"report\":\"perf_bench\",\"smoke\":{},",
            "\"train\":{{\"system\":\"{}\",\"rows\":{},\"rounds\":{},",
            "\"wall_s\":{},\"rows_per_sec\":{}}},",
            "\"serve\":{{\"requests\":{},\"wall_s\":{},\"preds_per_sec\":{}}},",
            "\"codec\":{{\"frame_bytes\":{},\"round_trips\":{},\"wall_s\":{},",
            "\"bytes_per_sec\":{}}},",
            "\"net\":{{\"dispatch_batches\":{},\"wall_s\":{},\"rounds_per_sec\":{}}}}}\n"
        ),
        smoke,
        system.name(),
        rows_trained,
        out.rounds_run,
        train_s,
        rows_per_sec,
        run.predictions.len(),
        serve_s,
        preds_per_sec,
        frame_bytes,
        codec_iters,
        codec_s,
        codec_bytes_per_sec,
        net_run.batches.len(),
        net_run.wall_s,
        net_rounds_per_sec,
    );
    let path = report::write_artifact("BENCH_perf.json", &json);
    println!("wrote {}", path.display());
    if report::json_mode() {
        print!("{json}");
    }
}
