//! Regenerates one paper exhibit; see `mlstar_bench::figures`.
fn main() {
    mlstar_bench::cli::exhibit_args(
        "table1",
        "regenerates Table I (systems × workloads summary)",
    );
    mlstar_bench::figures::run_table1();
}
