//! Regenerates one paper exhibit; see `mlstar_bench::figures`.
fn main() {
    mlstar_bench::cli::exhibit_args(
        "ablation",
        "regenerates the lazy-vs-eager / fan-in ablation exhibit",
    );
    mlstar_bench::figures::run_ablation();
}
