//! Regenerates one paper exhibit; see `mlstar_bench::figures`.
fn main() {
    mlstar_bench::figures::run_ablation();
}
