//! Exercises the `mlstar-serve` subsystem end to end: trains a model,
//! packages it as a versioned artifact, walks a staged rollout through
//! the registry, scores a seeded open-loop workload at several worker
//! shard counts, and reports the serving telemetry (batch fill, queue
//! depth, queue/score/merge latency percentiles, throughput).
//!
//! The shard sweep doubles as a live determinism check: predictions and
//! batch-formation telemetry must be identical at every shard count.

use std::time::Instant;

use mlstar_bench::report::{self, ServeSummary, Table};
use mlstar_core::{System, TrainConfig};
use mlstar_data::{catalog, SyntheticConfig};
use mlstar_serve::{
    BatchPolicy, ModelArtifact, ModelRegistry, Prediction, QueryWorkload, ScoringEngine,
};
use mlstar_sim::ClusterSpec;

const SHARD_SWEEP: [usize; 3] = [1, 2, 8];

fn usage(code: i32) -> ! {
    println!("serve_bench: micro-batched model serving on a trained MLlib* model");
    println!();
    println!("USAGE:");
    println!("    cargo run --release -p mlstar-bench --bin serve_bench -- [OPTIONS]");
    println!();
    println!("OPTIONS:");
    println!("    --dataset <name>   synthetic (default), avazu, url, kddb, kdd12");
    println!("    --requests <n>     workload size (default 2048)");
    println!("    --json             also write the serving telemetry as a JSON artifact");
    println!("    -h, --help         this message");
    println!();
    println!("Writes artifacts to bench_results/ (override with MLSTAR_OUT).");
    std::process::exit(code);
}

fn parse_args() -> (String, usize) {
    let mut dataset = "synthetic".to_owned();
    let mut requests = 2048usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => usage(0),
            "--json" => report::set_json_mode(true),
            "--dataset" => {
                i += 1;
                dataset = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("serve_bench: --dataset needs a value");
                    std::process::exit(2);
                });
            }
            "--requests" => {
                i += 1;
                requests = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("serve_bench: --requests needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("serve_bench: unexpected argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    (dataset, requests)
}

fn load_dataset(name: &str) -> mlstar_data::SparseDataset {
    let preset = match name {
        "synthetic" => SyntheticConfig::small("serve-bench", 2000, 128),
        "avazu" => catalog::avazu_like().scaled_down(20_000),
        "url" => catalog::url_like().scaled_down(20_000),
        "kddb" => catalog::kddb_like().scaled_down(200_000),
        "kdd12" => catalog::kdd12_like().scaled_down(200_000),
        other => {
            eprintln!("serve_bench: unknown dataset {other:?} (see --help)");
            std::process::exit(2);
        }
    };
    preset.generate()
}

fn main() {
    let (dataset_name, num_requests) = parse_args();
    let ds = load_dataset(&dataset_name);
    report::banner(&format!(
        "serve_bench — {dataset_name}: {} examples × {} features",
        ds.len(),
        ds.num_features()
    ));

    // Train two model versions and walk them through a staged rollout.
    let cluster = ClusterSpec::cluster1();
    let system = System::MllibStar;
    let mut registry = ModelRegistry::new();
    let cfg_v1 = TrainConfig {
        max_rounds: 6,
        seed: 42,
        ..TrainConfig::default()
    };
    let out_v1 = system.train_default(&ds, &cluster, &cfg_v1);
    let v1 = registry
        .publish(
            &dataset_name,
            ModelArtifact::from_run(system, &cfg_v1, &out_v1, &ds).expect("artifact v1"),
        )
        .expect("publish v1");
    let cfg_v2 = TrainConfig {
        max_rounds: 12,
        seed: 42,
        ..TrainConfig::default()
    };
    let out_v2 = system.train_default(&ds, &cluster, &cfg_v2);
    let v2 = registry
        .publish(
            &dataset_name,
            ModelArtifact::from_run(system, &cfg_v2, &out_v2, &ds).expect("artifact v2"),
        )
        .expect("publish v2");
    println!("registry: published v{v1} (active) then v{v2} (staged); promoting v{v2}…");
    registry.promote(&dataset_name).expect("promote");
    let active = registry.active(&dataset_name).expect("active artifact");
    println!(
        "serving {} v{} — trained by {} (seed {}, {} rounds, final objective {})",
        dataset_name,
        registry.active_version(&dataset_name).expect("version"),
        active.provenance().system,
        active.provenance().seed,
        active.provenance().rounds_run,
        report::fmt_opt(active.provenance().final_objective, ""),
    );

    // Codec round trip on the serving artifact.
    let encoded = active.encode();
    let decoded = ModelArtifact::decode(&encoded).expect("decode artifact");
    assert_eq!(&decoded, active, "artifact codec round trip");
    println!(
        "artifact codec: {} bytes, round-trips bit-exactly\n",
        encoded.len()
    );

    // Seeded open-loop workload, then the shard sweep.
    let workload = QueryWorkload {
        num_requests,
        ..QueryWorkload::default()
    };
    let requests = workload.generate(&ds);
    println!(
        "workload: {} requests at {} req/s (burst p={}, hot {}% of rows takes {}% of queries)\n",
        requests.len(),
        workload.arrival_rate,
        workload.burst_prob,
        workload.hot_row_fraction * 100.0,
        workload.hot_query_prob * 100.0,
    );

    let mut table = Table::new(&[
        "shards",
        "batches",
        "fill",
        "depth",
        "q p50/p95/p99 (µs)",
        "score p99 (µs)",
        "merge p99 (µs)",
        "rps (sim)",
        "wall ms",
    ]);
    let mut summaries: Vec<(String, ServeSummary)> = Vec::new();
    let mut baseline: Option<Vec<Prediction>> = None;
    for shards in SHARD_SWEEP {
        let engine = ScoringEngine::for_artifact(active, BatchPolicy::default(), shards);
        let wall = Instant::now();
        let run = engine.run(&requests).expect("serve run");
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        match &baseline {
            None => baseline = Some(run.predictions.clone()),
            Some(b) => assert_eq!(
                b, &run.predictions,
                "predictions must be bit-identical across shard counts"
            ),
        }
        let t = &run.telemetry;
        let us = |s: f64| s * 1e6;
        table.row(&[
            shards.to_string(),
            t.num_batches().to_string(),
            format!("{:.2}", t.mean_fill()),
            format!("{:.1}", t.mean_queue_depth()),
            format!(
                "{:.0}/{:.0}/{:.0}",
                us(t.queue.p50()),
                us(t.queue.p95()),
                us(t.queue.p99())
            ),
            format!("{:.0}", us(t.score.p99())),
            format!("{:.0}", us(t.merge.p99())),
            format!("{:.0}", t.throughput_rps()),
            format!("{wall_ms:.1}"),
        ]);
        summaries.push((
            format!("shards={shards}"),
            ServeSummary {
                shards,
                requests: t.requests,
                batches: t.num_batches(),
                mean_fill: t.mean_fill(),
                mean_queue_depth: t.mean_queue_depth(),
                throughput_rps: t.throughput_rps(),
                queue_p: [t.queue.p50(), t.queue.p95(), t.queue.p99()],
                score_p: [t.score.p50(), t.score.p95(), t.score.p99()],
                merge_p: [t.merge.p50(), t.merge.p95(), t.merge.p99()],
            },
        ));
    }
    table.print();
    println!("\npredictions are bit-identical across the shard sweep ✔");

    if report::json_mode() {
        let json = report::serve_stats_json("serve_bench", &summaries);
        let path = report::write_artifact("serve_bench.json", &json);
        println!("wrote {}", path.display());
    }
}
