//! Figure 1: ML workload shares on the Tencent platform.
//!
//! The paper's Figure 1 is survey data (TensorFlow 51%, Angel 24%,
//! XGBoost 22%, MLlib 3%; >80% of data through Spark ETL). We regenerate
//! the share table from a seeded synthetic job trace — an illustrative,
//! runnable stand-in documented in `DESIGN.md`.

use mlstar_data::workload::{analyze, generate_trace, WorkloadConfig};

use crate::report::{banner, write_artifact, Table};

/// Regenerates the Figure 1 share table.
pub fn run_fig1() {
    banner("Figure 1 — ML workload shares (synthetic Tencent-platform job trace)");
    let cfg = WorkloadConfig::default();
    let trace = generate_trace(&cfg);
    let report = analyze(&trace);

    let mut table = Table::new(&["system", "share (ours)", "share (paper)"]);
    let paper = [
        ("TensorFlow", 0.51),
        ("Angel", 0.24),
        ("XGBoost", 0.22),
        ("MLlib", 0.03),
    ];
    let mut csv = String::from("system,share,paper_share\n");
    for ((system, share), (pname, pshare)) in report.system_shares.iter().zip(paper.iter()) {
        assert_eq!(system.name(), *pname, "order mismatch");
        table.row(&[
            system.name().to_owned(),
            format!("{:.1}%", share * 100.0),
            format!("{:.0}%", pshare * 100.0),
        ]);
        csv.push_str(&format!("{},{:.4},{:.2}\n", system.name(), share, pshare));
    }
    table.print();
    println!(
        "\ndata volume through Spark ETL: {:.1}% (paper: >80%)  [{} jobs]",
        report.spark_etl_data_fraction * 100.0,
        report.total_jobs
    );
    let path = write_artifact("fig1_workload_shares.csv", &csv);
    println!("wrote {}", path.display());
}
