//! Ablation studies for the design choices called out in `DESIGN.md`.
//!
//! 1. **Technique isolation** — MLlib → +model averaging → +AllReduce
//!    (the Figure 3 progression, quantified).
//! 2. **`treeAggregate` fan-in sweep** — how much the hierarchical scheme
//!    relieves the driver.
//! 3. **SSP staleness sweep** — Petuum\* on the heterogeneous cluster.
//! 4. **Aggregation scheme** — model summation vs model averaging across
//!    learning rates (the Zhang & Jordan remark).
//! 5. **Grid search** — the paper's tuning protocol, run live.

use mlstar_core::{
    reference_optimum, train_mllib, train_mllib_star, train_petuum, train_petuum_star, GridSearch,
    PsSystemConfig, TrainConfig,
};
use mlstar_data::catalog;
use mlstar_glm::{LearningRate, Loss, Regularizer};
use mlstar_sim::ClusterSpec;

use crate::figures::tuning::{quick_mode, tune_system};
use crate::report::{
    banner, fmt_opt, json_mode, round_stats_json, summarize_rounds, write_artifact, Table,
};
use mlstar_core::System;

/// Runs all five ablations.
pub fn run_ablation() {
    let ds = super::scale_for_quick(catalog::kdd12_like()).generate();
    let cluster = ClusterSpec::cluster1();
    let reg = Regularizer::None;
    let seed = 42;
    let opt = reference_optimum(
        &ds,
        Loss::Hinge,
        reg,
        if quick_mode() { 5 } else { 25 },
        seed,
    );

    technique_isolation(&ds, &cluster, reg, seed, opt);
    fanin_sweep(&ds, &cluster, reg, seed);
    staleness_sweep(&ds, reg, seed, opt);
    aggregation_schemes(&ds, &cluster, reg, seed);
    grid_search_demo(&ds, &cluster, reg, seed, opt);
    angel_batch_sweep(&ds, &cluster, reg, seed);
    weighted_averaging(&ds, &cluster, reg, seed);
    second_order(&ds, &cluster, seed);
    allreduce_algorithms();
    waves_sweep(&ds, seed);
    sparse_messaging(seed);
    failure_overhead(&ds, &cluster, seed);
}

fn technique_isolation(
    ds: &mlstar_data::SparseDataset,
    cluster: &ClusterSpec,
    reg: Regularizer,
    seed: u64,
    opt: f64,
) {
    banner("Ablation 1 — technique isolation (kdd12-like, L2=0)");
    let mllib = tune_system(System::Mllib, ds, cluster, reg, seed);
    let ma = tune_system(System::MllibMa, ds, cluster, reg, seed);
    let star = tune_system(System::MllibStar, ds, cluster, reg, seed);
    let best = [&mllib, &ma, &star]
        .iter()
        .filter_map(|o| o.trace.best_objective())
        .fold(opt, f64::min);
    let target = best + 0.01;
    let mut table = Table::new(&[
        "system",
        "steps to target",
        "time to target",
        "updates/step",
        "comp/comm/idle",
    ]);
    let mut csv =
        String::from("system,steps,time_s,updates_per_step,compute_s,comm_s,idle_s,recovery_s\n");
    for o in [&mllib, &ma, &star] {
        let steps = o.trace.steps_to_reach(target);
        let time = o.trace.time_to_reach(target);
        let ups = o.total_updates as f64 / o.rounds_run.max(1) as f64;
        let phases = summarize_rounds(&o.round_stats);
        table.row(&[
            o.trace.system.clone(),
            steps.map_or("—".into(), |s| s.to_string()),
            fmt_opt(time, "s"),
            format!("{ups:.0}"),
            phases.fmt_split(),
        ]);
        csv.push_str(&format!(
            "{},{},{},{ups:.1},{:.4},{:.4},{:.4},{:.4}\n",
            o.trace.system,
            steps.map_or(-1i64, |s| s as i64),
            time.map_or(-1.0, |t| t),
            phases.compute_s,
            phases.comm_s,
            phases.idle_s,
            phases.recovery_s,
        ));
    }
    table.print();
    println!("(model averaging cuts steps; AllReduce additionally cuts per-step latency)");
    write_artifact("ablation_techniques.csv", &csv);
    if json_mode() {
        let runs: Vec<(String, &[mlstar_core::RoundStats])> = [&mllib, &ma, &star]
            .iter()
            .map(|o| (o.trace.system.clone(), o.round_stats.as_slice()))
            .collect();
        let json = round_stats_json("ablation_technique_isolation", &runs);
        let path = write_artifact("ablation_techniques.json", &json);
        println!("wrote {}", path.display());
    }
}

fn fanin_sweep(
    ds: &mlstar_data::SparseDataset,
    cluster: &ClusterSpec,
    reg: Regularizer,
    seed: u64,
) {
    banner("Ablation 2 — treeAggregate fan-in sweep (MLlib, fixed 20 rounds)");
    let mut table = Table::new(&["fan-in", "total time (20 rounds)", "driver busy time"]);
    let mut csv = String::from("fanin,total_time_s,driver_busy_s\n");
    for fanin in [2usize, 3, 4, 8, 32] {
        let cfg = TrainConfig {
            reg,
            lr: LearningRate::Constant(4.0),
            batch_frac: 0.01,
            max_rounds: 20,
            eval_every: 20,
            tree_fanin: fanin,
            seed,
            ..TrainConfig::default()
        };
        let out = train_mllib(ds, cluster, &cfg);
        let total = out.gantt.makespan().as_secs_f64();
        let driver = out.gantt.busy_time(mlstar_sim::NodeId::Driver);
        let label = if fanin >= cluster.num_executors() {
            format!("{fanin} (no tree: direct)")
        } else {
            fanin.to_string()
        };
        table.row(&[label, format!("{total:.2}s"), format!("{driver:.2}s")]);
        csv.push_str(&format!("{fanin},{total:.4},{driver:.4}\n"));
    }
    table.print();
    println!("(larger fan-in pushes aggregation back onto the driver)");
    write_artifact("ablation_fanin.csv", &csv);
}

fn staleness_sweep(ds: &mlstar_data::SparseDataset, reg: Regularizer, seed: u64, opt: f64) {
    banner("Ablation 3 — SSP staleness sweep (Petuum*, heterogeneous cluster)");
    let cluster = ClusterSpec::cluster2(8, seed);
    let base_cfg = petuum_base(reg, seed);
    let mut table = Table::new(&["staleness", "time to target", "final objective"]);
    let mut csv = String::from("staleness,time_s,final_objective\n");
    // Establish a common target from a BSP probe run.
    let probe = train_petuum_star(
        ds,
        &cluster,
        &base_cfg,
        &PsSystemConfig {
            staleness: 0,
            num_servers: 2,
            ..PsSystemConfig::default()
        },
    );
    let target = probe.trace.best_objective().unwrap_or(opt).min(opt) + 0.01;
    // u64::MAX staleness is effectively ASP (the bound never binds).
    for staleness in [0u64, 1, 2, 4, 8, u64::MAX] {
        let out = train_petuum_star(
            ds,
            &cluster,
            &base_cfg,
            &PsSystemConfig {
                staleness,
                num_servers: 2,
                ..PsSystemConfig::default()
            },
        );
        let t = out.trace.time_to_reach(target);
        let f = out.trace.final_objective().unwrap_or(f64::NAN);
        let label = if staleness == u64::MAX {
            "ASP".to_owned()
        } else {
            staleness.to_string()
        };
        table.row(&[label, fmt_opt(t, "s"), format!("{f:.4}")]);
        csv.push_str(&format!("{staleness},{},{f:.6}\n", t.map_or(-1.0, |x| x)));
    }
    table.print();
    println!("(staleness hides stragglers; too much staleness hurts convergence)");
    write_artifact("ablation_staleness.csv", &csv);
}

fn aggregation_schemes(
    ds: &mlstar_data::SparseDataset,
    cluster: &ClusterSpec,
    reg: Regularizer,
    seed: u64,
) {
    banner("Ablation 4 — model summation (Petuum) vs model averaging (Petuum*)");
    let mut table = Table::new(&["learning rate", "summation final f", "averaging final f"]);
    let mut csv = String::from("eta,summation_final,averaging_final\n");
    let base_cfg = petuum_base(reg, seed);
    let ps = PsSystemConfig {
        num_servers: 2,
        staleness: 2,
        ..PsSystemConfig::default()
    };
    let rounds = if quick_mode() { 20 } else { 200 };
    for eta in [0.002, 0.01, 0.05, 0.25] {
        let cfg = TrainConfig {
            lr: LearningRate::Constant(eta),
            max_rounds: rounds,
            eval_every: rounds,
            ..base_cfg.clone()
        };
        let sum = train_petuum(ds, cluster, &cfg, &ps);
        let avg = train_petuum_star(ds, cluster, &cfg, &ps);
        let fs = sum.trace.final_objective().unwrap_or(f64::NAN);
        let fa = avg.trace.final_objective().unwrap_or(f64::NAN);
        table.row(&[format!("{eta}"), format!("{fs:.4}"), format!("{fa:.4}")]);
        csv.push_str(&format!("{eta},{fs:.6},{fa:.6}\n"));
    }
    table.print();
    println!("(summation can win at small rates but destabilizes as η grows — Zhang & Jordan)");
    write_artifact("ablation_aggregation.csv", &csv);
}

fn grid_search_demo(
    ds: &mlstar_data::SparseDataset,
    cluster: &ClusterSpec,
    reg: Regularizer,
    seed: u64,
    opt: f64,
) {
    banner("Ablation 5 — the paper's grid-search protocol, live (MLlib*)");
    let base = TrainConfig {
        reg,
        batch_frac: 1.0,
        max_rounds: if quick_mode() { 5 } else { 20 },
        seed,
        ..TrainConfig::default()
    };
    let grid = GridSearch {
        etas: vec![0.002, 0.02, 0.2],
        batch_fracs: vec![1.0],
        stalenesses: vec![0],
        lambdas: vec![reg.lambda()],
    };
    let result = grid.run(&base, opt + 0.01, |cfg, _point| {
        train_mllib_star(ds, cluster, cfg)
    });
    println!(
        "evaluated {} combinations; winner: η={}, batch_frac={}, λ={} → final f = {:.4}",
        result.evaluated,
        result.best_point.eta,
        result.best_point.batch_frac,
        result.best_point.lambda,
        result
            .best_output
            .trace
            .final_objective()
            .unwrap_or(f64::NAN)
    );
}

/// The Petuum-family base schedule used by the staleness/aggregation
/// ablations.
fn petuum_base(reg: Regularizer, seed: u64) -> TrainConfig {
    TrainConfig {
        reg,
        lr: LearningRate::Constant(0.2),
        batch_frac: 0.05,
        max_rounds: if quick_mode() { 60 } else { 800 },
        eval_every: 20,
        seed,
        ..TrainConfig::default()
    }
}

/// Ablation 6 — Angel's small-batch weakness (Section V-B2 of the paper):
/// per-batch allocation/GC overhead makes small batches disproportionately
/// expensive per epoch.
fn angel_batch_sweep(
    ds: &mlstar_data::SparseDataset,
    cluster: &ClusterSpec,
    reg: Regularizer,
    seed: u64,
) {
    banner("Ablation 6 — Angel batch-size sweep (per-batch alloc/GC overhead)");
    let epochs = if quick_mode() { 5 } else { 30 };
    let mut table = Table::new(&["batch fraction", "sim time for fixed epochs", "final f"]);
    let mut csv = String::from("batch_frac,time_s,final_objective\n");
    for frac in [0.002, 0.01, 0.05, 0.25] {
        let cfg = TrainConfig {
            reg,
            lr: LearningRate::Constant(0.01),
            batch_frac: frac,
            max_rounds: epochs,
            eval_every: epochs,
            seed,
            ..TrainConfig::default()
        };
        let angel = mlstar_core::AngelConfig {
            num_servers: 2,
            staleness: 1,
            alloc_bandwidth_bps: 2e8,
            ..Default::default()
        };
        let out = mlstar_core::train_angel(ds, cluster, &cfg, &angel);
        let t = out
            .trace
            .points
            .last()
            .map_or(f64::NAN, |p| p.time.as_secs_f64());
        let f = out.trace.final_objective().unwrap_or(f64::NAN);
        table.row(&[format!("{frac}"), format!("{t:.2}s"), format!("{f:.4}")]);
        csv.push_str(&format!("{frac},{t:.4},{f:.6}\n"));
    }
    table.print();
    println!("(smaller batches → more per-batch allocations → slower epochs)");
    write_artifact("ablation_angel_batch.csv", &csv);
}

/// Ablation 7 — uniform vs partition-size-weighted model averaging on
/// skewed partitions (the Zhang & Jordan refinement of the paper's
/// Remark).
fn weighted_averaging(
    ds: &mlstar_data::SparseDataset,
    cluster: &ClusterSpec,
    reg: Regularizer,
    seed: u64,
) {
    banner("Ablation 7 — model-averaging weighting under partition skew");
    let rounds = if quick_mode() { 4 } else { 15 };
    let mut table = Table::new(&["worker-0 share", "uniform final f", "weighted final f"]);
    let mut csv = String::from("hot_fraction,uniform_final,weighted_final\n");
    for skew in [0.125, 0.3, 0.6] {
        let base = TrainConfig {
            reg,
            lr: LearningRate::Constant(0.02),
            batch_frac: 1.0,
            max_rounds: rounds,
            eval_every: rounds,
            partition_skew: Some(skew),
            seed,
            ..TrainConfig::default()
        };
        let uniform = train_mllib_star(ds, cluster, &base);
        let weighted = train_mllib_star(
            ds,
            cluster,
            &TrainConfig {
                ma_weighting: mlstar_core::MaWeighting::PartitionSize,
                ..base
            },
        );
        let fu = uniform.trace.final_objective().unwrap_or(f64::NAN);
        let fw = weighted.trace.final_objective().unwrap_or(f64::NAN);
        table.row(&[format!("{skew}"), format!("{fu:.4}"), format!("{fw:.4}")]);
        csv.push_str(&format!("{skew},{fu:.6},{fw:.6}\n"));
    }
    table.print();
    println!("(size-weighting matters as partitions become unequal)");
    write_artifact("ablation_weighted_ma.csv", &csv);
}

/// Ablation 8 — first-order MLlib* vs the `spark.ml` L-BFGS plan (the
/// paper's future-work question, quantified).
fn second_order(ds: &mlstar_data::SparseDataset, cluster: &ClusterSpec, seed: u64) {
    banner("Ablation 8 — MLlib* (parallel SGD + AllReduce) vs spark.ml (L-BFGS)");
    let reg = Regularizer::L2 { lambda: 0.01 };
    let star = tune_system(System::MllibStar, ds, cluster, reg, seed);
    let lbfgs_cfg = TrainConfig {
        loss: mlstar_glm::Loss::Hinge,
        reg,
        max_rounds: if quick_mode() { 5 } else { 25 },
        seed,
        ..TrainConfig::default()
    };
    let lbfgs = mlstar_core::train_sparkml_lbfgs(
        ds,
        cluster,
        &lbfgs_cfg,
        &mlstar_core::SparkMlConfig::default(),
    );
    let best = star
        .trace
        .best_objective()
        .unwrap_or(f64::INFINITY)
        .min(lbfgs.trace.best_objective().unwrap_or(f64::INFINITY));
    let target = best + 0.01;
    let mut table = Table::new(&[
        "system",
        "outer steps to target",
        "time to target",
        "final f",
    ]);
    let mut csv = String::from("system,steps,time_s,final_objective\n");
    for o in [&star, &lbfgs] {
        let steps = o.trace.steps_to_reach(target);
        let time = o.trace.time_to_reach(target);
        let f = o.trace.final_objective().unwrap_or(f64::NAN);
        table.row(&[
            o.trace.system.clone(),
            steps.map_or("—".into(), |s| s.to_string()),
            fmt_opt(time, "s"),
            format!("{f:.4}"),
        ]);
        csv.push_str(&format!(
            "{},{},{},{f:.6}\n",
            o.trace.system,
            steps.map_or(-1i64, |s| s as i64),
            time.map_or(-1.0, |t| t),
        ));
    }
    table.print();
    println!("(L-BFGS needs few outer iterations but pays full passes + line-search");
    println!(" rounds through the driver — the spark.ml question the paper leaves open)");
    write_artifact("ablation_second_order.csv", &csv);
}

/// Ablation 9 — direct-shuffle AllReduce (MLlib*'s implementation on
/// Spark's shuffle) vs ring AllReduce (Thakur et al., the paper's [16]):
/// identical traffic, different latency/fan-out trade-off.
fn allreduce_algorithms() {
    banner("Ablation 9 — AllReduce algorithm: direct shuffle vs ring");
    use mlstar_collectives::{all_reduce_average, ring_all_reduce_average};
    use mlstar_linalg::DenseVector;
    use mlstar_sim::{
        CostModel, GanttRecorder, NetworkSpec, NodeSpec, RoundBuilder, SimDuration, SimTime,
    };
    let mut table = Table::new(&["k", "dim", "latency", "direct", "ring"]);
    let mut csv = String::from("k,dim,latency_ms,direct_s,ring_s\n");
    for (k, dim, latency_ms) in [
        (8usize, 1_000_000usize, 1u64),
        (8, 1_000_000, 20),
        (32, 1_000_000, 1),
        (32, 10_000, 20),
    ] {
        let mut spec =
            mlstar_sim::ClusterSpec::uniform(k, NodeSpec::standard(), NetworkSpec::gbps1());
        spec.network.latency = SimDuration::from_millis(latency_ms);
        let cost = CostModel::new(spec);
        let nodes: Vec<mlstar_sim::NodeId> = (0..k).map(mlstar_sim::NodeId::Executor).collect();
        let vs: Vec<DenseVector> = (0..k).map(|_| DenseVector::zeros(dim)).collect();
        let run = |ring: bool| {
            let mut g = GanttRecorder::new();
            let mut rb = RoundBuilder::new(&mut g, 0, SimTime::ZERO, &nodes);
            if ring {
                ring_all_reduce_average(&mut rb, &cost, &vs);
            } else {
                all_reduce_average(&mut rb, &cost, &vs);
            }
            rb.finish().as_secs_f64()
        };
        let direct = run(false);
        let ring = run(true);
        table.row(&[
            k.to_string(),
            dim.to_string(),
            format!("{latency_ms}ms"),
            format!("{direct:.3}s"),
            format!("{ring:.3}s"),
        ]);
        csv.push_str(&format!("{k},{dim},{latency_ms},{direct:.6},{ring:.6}\n"));
    }
    table.print();
    println!("(same 2(k−1)m traffic; the ring pays 2(k−1) latency terms)");
    write_artifact("ablation_allreduce_algo.csv", &csv);
}

/// Ablation 10 — tasks per executor ("waves"). The paper (Section V-C):
/// "We tuned the number of tasks per executor, and the result turns out
/// that one task per executor is the optimal solution, due to heavy
/// communication overhead."
fn waves_sweep(ds: &mlstar_data::SparseDataset, seed: u64) {
    banner("Ablation 10 — tasks per executor (waves) on the heterogeneous cluster");
    let cluster = ClusterSpec::cluster2(8, seed);
    let rounds = if quick_mode() { 3 } else { 10 };
    let mut table = Table::new(&["waves", "total time (fixed rounds)", "final f"]);
    let mut csv = String::from("waves,total_time_s,final_objective\n");
    for waves in [1usize, 2, 4, 8] {
        let cfg = TrainConfig {
            lr: LearningRate::Constant(0.2),
            batch_frac: 1.0,
            max_rounds: rounds,
            eval_every: rounds,
            waves,
            seed,
            ..TrainConfig::default()
        };
        let out = train_mllib_star(ds, &cluster, &cfg);
        let t = out.gantt.makespan().as_secs_f64();
        let f = out.trace.final_objective().unwrap_or(f64::NAN);
        table.row(&[waves.to_string(), format!("{t:.2}s"), format!("{f:.4}")]);
        csv.push_str(&format!("{waves},{t:.4},{f:.6}\n"));
    }
    table.print();
    println!("(extra waves pay extra task overheads; one wave is optimal, as the paper found)");
    write_artifact("ablation_waves.csv", &csv);
}

/// Ablation 11 — sparse PS messaging: pulls fetch only the partition's
/// active coordinates, pushes ship only touched coordinates (what real
/// Petuum/Angel do for high-dimensional sparse models). Measured on the
/// kddb-like preset, whose 30k-dimensional model dwarfs each worker's
/// active feature set.
fn sparse_messaging(seed: u64) {
    banner("Ablation 11 — dense vs sparse PS messages (kddb-like, Petuum)");
    let ds = super::scale_for_quick(mlstar_data::catalog::kddb_like()).generate();
    let cluster = ClusterSpec::cluster1();
    let rounds = if quick_mode() { 20 } else { 400 };
    let cfg = TrainConfig {
        lr: LearningRate::Constant(0.02),
        batch_frac: 0.05,
        max_rounds: rounds,
        eval_every: rounds / 4,
        seed,
        ..TrainConfig::default()
    };
    let mut table = Table::new(&["messages", "end-to-end sim time", "final f"]);
    let mut csv = String::from("sparse,end_time_s,final_objective\n");
    for sparse in [false, true] {
        let ps = PsSystemConfig {
            num_servers: 2,
            staleness: 2,
            sparse_messages: sparse,
        };
        let out = train_petuum(&ds, &cluster, &cfg, &ps);
        let t = out
            .trace
            .points
            .last()
            .map_or(f64::NAN, |p| p.time.as_secs_f64());
        let f = out.trace.final_objective().unwrap_or(f64::NAN);
        table.row(&[
            if sparse {
                "sparse".into()
            } else {
                "dense".to_owned()
            },
            format!("{t:.2}s"),
            format!("{f:.4}"),
        ]);
        csv.push_str(&format!("{sparse},{t:.4},{f:.6}\n"));
    }
    table.print();
    println!("(identical math — only the wire volume changes)");
    write_artifact("ablation_sparse_messages.csv", &csv);
}

/// Ablation 12 — the simulated cost of Spark's fault tolerance: per-round
/// task failures recovered via lineage re-execution (the feature the
/// paper's introduction credits Spark with). Results are bit-identical;
/// only the clock pays.
fn failure_overhead(ds: &mlstar_data::SparseDataset, cluster: &ClusterSpec, seed: u64) {
    banner("Ablation 12 — lineage-recovery overhead under task failures (MLlib*)");
    let rounds = if quick_mode() { 4 } else { 20 };
    let mut table = Table::new(&["failure prob/round", "makespan", "overhead"]);
    let mut csv = String::from("failure_prob,makespan_s,overhead_pct\n");
    let mut base_time = None;
    for prob in [0.0, 0.05, 0.2, 1.0] {
        let cfg = TrainConfig {
            lr: LearningRate::Constant(0.2),
            batch_frac: 1.0,
            max_rounds: rounds,
            eval_every: rounds,
            failure_prob: prob,
            seed,
            ..TrainConfig::default()
        };
        let out = train_mllib_star(ds, cluster, &cfg);
        let t = out.gantt.makespan().as_secs_f64();
        let base = *base_time.get_or_insert(t);
        let overhead = (t / base - 1.0) * 100.0;
        table.row(&[
            format!("{prob}"),
            format!("{t:.2}s"),
            format!("{overhead:+.0}%"),
        ]);
        csv.push_str(&format!("{prob},{t:.4},{overhead:.2}\n"));
    }
    table.print();
    println!("(lineage re-runs only the lost task; results are unchanged)");
    write_artifact("ablation_failures.csv", &csv);
}
