//! Figure 6: scalability on the Tencent (WX-like) workload over the
//! heterogeneous Cluster 2 at 32 / 64 / 128 machines.
//!
//! The math runs on the ~2000×-scaled WX-like dataset, but compute and
//! network *rates* are divided by the same factor
//! ([`super::paper_scale_cluster`]), so per-round simulated times match
//! the full-size workload — this preserves the compute-vs-overhead ratio
//! that drives the paper's scalability story.
//!
//! The paper's observations to reproduce:
//! * MLlib\* converges much faster than Angel and MLlib at every scale
//!   (Figure 6a–c: only MLlib\* reaches the best objective);
//! * scalability is poor for everyone: going 32 → 128 machines yields
//!   ~1.5–1.7× (not 4×), and MLlib's *per-step time* even increases —
//!   communication grows with k while per-machine compute shrinks, and
//!   the BSP barrier waits on an ever-worse straggler tail.

use mlstar_core::{reference_optimum, ConvergenceTrace, System, TrainOutput};
use mlstar_data::catalog;
use mlstar_glm::{Loss, Regularizer};
use mlstar_sim::ClusterSpec;

use crate::figures::tuning::{paper_scale_cluster, quick_mode, tune_system_scaled};
use crate::report::{ascii_convergence, banner, fmt_opt, traces_to_csv, write_artifact, Table};

/// The WX dataset is scaled down ~2000× from Table I.
const WX_DATA_SCALE: f64 = 2000.0;

/// Regenerates Figure 6 (a–d). No Petuum, as in the paper ("the
/// deployment requirement of Petuum is not satisfied on Cluster 2").
pub fn run_fig6() {
    banner("Figure 6 — WX-like scalability on heterogeneous Cluster 2 (32/64/128 machines)");
    let ds = super::scale_for_quick(catalog::wx_like()).generate();
    let reg = Regularizer::None;
    let seed = 42;
    let scale = if quick_mode() { 50.0 } else { WX_DATA_SCALE };
    let opt = reference_optimum(
        &ds,
        Loss::Hinge,
        reg,
        if quick_mode() { 5 } else { 15 },
        seed,
    );
    let machine_counts: &[usize] = if quick_mode() {
        &[8, 16]
    } else {
        &[32, 64, 128]
    };
    let systems = [System::Mllib, System::MllibStar, System::Angel];

    struct Cell {
        system: &'static str,
        k: usize,
        time_to_target: Option<f64>,
        secs_per_step: f64,
        trace: ConvergenceTrace,
    }
    let mut results: Vec<Cell> = Vec::new();

    for &k in machine_counts {
        let cluster = paper_scale_cluster(ClusterSpec::cluster2(k, seed), scale);
        let runs: Vec<(System, TrainOutput)> = systems
            .into_iter()
            .map(|s| (s, tune_system_scaled(s, &ds, &cluster, reg, seed, scale)))
            .collect();
        let best = runs
            .iter()
            .filter_map(|(_, o)| o.trace.best_objective())
            .fold(opt, f64::min);
        let target = best + 0.01;

        println!("-- #machines = {k} (target f = {target:.3}) --");
        let refs: Vec<&ConvergenceTrace> = runs.iter().map(|(_, o)| &o.trace).collect();
        print!("{}", ascii_convergence(&refs, 72, 12));
        println!();
        for (system, mut o) in runs {
            let time_to_target = o.trace.time_to_reach(target);
            let end = o.trace.points.last().map_or(0.0, |p| p.time.as_secs_f64());
            let secs_per_step = end / o.rounds_run.max(1) as f64;
            o.trace.workload.push_str(&format!(" k={k}"));
            results.push(Cell {
                system: system.name(),
                k,
                time_to_target,
                secs_per_step,
                trace: o.trace,
            });
        }
    }

    // Panel (d): speedup vs #machines, normalized to the smallest count.
    // Time-to-target where the system converges (MLlib*); per-step time
    // otherwise (the paper's own fallback for MLlib: "the time cost per
    // epoch even increases").
    let mut table = Table::new(&[
        "system",
        "k",
        "s/step",
        "time to target",
        "speedup vs smallest k",
    ]);
    let mut csv = String::from("system,k,secs_per_step,time_to_target,speedup\n");
    for system in systems {
        let base = results
            .iter()
            .find(|c| c.system == system.name() && c.k == machine_counts[0])
            .expect("base cell exists"); // lint:allow(panic_in_lib): the sweep fills every (system, k) cell
        let base_metric = base.time_to_target.unwrap_or(base.secs_per_step);
        for &k in machine_counts {
            let cell = results
                .iter()
                .find(|c| c.system == system.name() && c.k == k)
                .expect("cell exists"); // lint:allow(panic_in_lib): the sweep fills every (system, k) cell
            let metric = cell.time_to_target.unwrap_or(cell.secs_per_step);
            let comparable = cell.time_to_target.is_some() == base.time_to_target.is_some();
            let speedup = if comparable && metric > 0.0 {
                format!("{:.2}×", base_metric / metric)
            } else {
                "—".to_owned()
            };
            table.row(&[
                system.name().to_owned(),
                k.to_string(),
                format!("{:.2}s", cell.secs_per_step),
                fmt_opt(cell.time_to_target, "s"),
                speedup.clone(),
            ]);
            csv.push_str(&format!(
                "{},{},{:.4},{},{}\n",
                system.name(),
                k,
                cell.secs_per_step,
                cell.time_to_target.map_or(-1.0, |t| t),
                speedup
            ));
        }
    }
    println!("speedup with machine count (paper: ≤1.7× from 32→128; MLlib degrades):");
    table.print();
    write_artifact("fig6_speedups.csv", &csv);

    let refs: Vec<&ConvergenceTrace> = results.iter().map(|c| &c.trace).collect();
    let path = write_artifact("fig6_scalability.csv", &traces_to_csv(&refs));
    println!("\nwrote {}", path.display());
}
