//! Table I: dataset statistics — paper originals vs. our scaled presets.

use mlstar_data::catalog;

use crate::report::{banner, write_artifact, Table};

/// Regenerates Table I: for each preset, the paper's original statistics
/// side by side with the generated look-alike's.
pub fn run_table1() {
    banner("Table I — dataset statistics (paper vs. scaled synthetic presets)");
    let paper = catalog::paper_table1();
    let presets = catalog::all_presets();
    let mut table = Table::new(&[
        "dataset",
        "paper #inst",
        "paper #feat",
        "paper size",
        "ours #inst",
        "ours #feat",
        "ours size",
        "avg nnz",
        "shape",
    ]);
    let mut csv = String::from(
        "dataset,paper_instances,paper_features,paper_size,ours_instances,ours_features,ours_bytes,avg_nnz,underdetermined\n",
    );
    for (p, preset) in paper.iter().zip(presets.iter()) {
        let cfg = super::scale_for_quick(preset.clone());
        let ds = cfg.generate();
        let s = ds.stats();
        table.row(&[
            preset.name.clone(),
            p.instances.to_string(),
            p.features.to_string(),
            p.size.to_string(),
            s.instances.to_string(),
            s.features.to_string(),
            s.size_human(),
            format!("{:.1}", s.avg_nnz),
            if s.underdetermined {
                "underdetermined".into()
            } else {
                "determined".into()
            },
        ]);
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{:.2},{}\n",
            preset.name,
            p.instances,
            p.features,
            p.size,
            s.instances,
            s.features,
            s.size_bytes,
            s.avg_nnz,
            s.underdetermined
        ));
    }
    table.print();
    let path = write_artifact("table1_datasets.csv", &csv);
    println!("\nwrote {}", path.display());
}
