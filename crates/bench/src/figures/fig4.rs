//! Figure 4: MLlib vs MLlib\* on the four public datasets, with and
//! without L2 regularization — objective vs. #communication steps and vs.
//! simulated time.
//!
//! For each of the eight subfigures we report the paper's headline
//! numbers: steps-to-threshold and time-to-threshold for both systems and
//! the resulting step/time speedups (the `NX` annotations in the paper's
//! plots), where the threshold is optimum + 0.01 as in the paper. Both
//! systems are tuned per workload by grid search, following the paper's
//! protocol.

use mlstar_core::{reference_optimum, System};
use mlstar_data::catalog;
use mlstar_glm::{Loss, Regularizer};
use mlstar_sim::ClusterSpec;

use crate::figures::tuning::{quick_mode, tune_system};
use crate::report::{
    ascii_convergence, banner, fmt_opt, fmt_speedup, json_mode, round_stats_json, traces_to_csv,
    write_artifact, Table,
};

/// Regenerates the Figure 4 grid.
pub fn run_fig4() {
    banner("Figure 4 — MLlib vs MLlib* (4 public datasets × {L2=0.1, L2=0})");
    let cluster = ClusterSpec::cluster1();
    let seed = 42;
    let ref_epochs = if quick_mode() { 5 } else { 25 };
    let mut table = Table::new(&[
        "dataset",
        "reg",
        "target f",
        "MLlib steps",
        "MLlib* steps",
        "step speedup",
        "MLlib time",
        "MLlib* time",
        "time speedup",
    ]);
    let mut all_csv = Vec::new();
    let mut all_stats: Vec<(String, Vec<mlstar_core::RoundStats>)> = Vec::new();

    for preset in catalog::public_presets() {
        let ds = super::scale_for_quick(preset.clone()).generate();
        for reg in [Regularizer::L2 { lambda: 0.1 }, Regularizer::None] {
            let opt = reference_optimum(&ds, Loss::Hinge, reg, ref_epochs, seed);
            let mllib = tune_system(System::Mllib, &ds, &cluster, reg, seed);
            let star = tune_system(System::MllibStar, &ds, &cluster, reg, seed);
            // The paper's threshold: accuracy loss 0.01 vs the optimum.
            // Our reference may be looser than what the systems achieve, so
            // take the min of all observed.
            let best = [
                opt,
                mllib.trace.best_objective().unwrap_or(f64::INFINITY),
                star.trace.best_objective().unwrap_or(f64::INFINITY),
            ]
            .into_iter()
            .fold(f64::INFINITY, f64::min);
            let target = best + 0.01;

            table.row(&[
                preset.name.clone(),
                reg.label(),
                format!("{target:.3}"),
                mllib
                    .trace
                    .steps_to_reach(target)
                    .map_or("—".into(), |s| s.to_string()),
                star.trace
                    .steps_to_reach(target)
                    .map_or("—".into(), |s| s.to_string()),
                fmt_speedup(star.trace.step_speedup_over(&mllib.trace, target)),
                fmt_opt(mllib.trace.time_to_reach(target), "s"),
                fmt_opt(star.trace.time_to_reach(target), "s"),
                fmt_speedup(star.trace.speedup_over(&mllib.trace, target)),
            ]);

            println!("({}, {})", preset.name, reg.label());
            print!(
                "{}",
                ascii_convergence(&[&mllib.trace, &star.trace], 72, 12)
            );
            println!();
            for o in [mllib, star] {
                let label = format!("{} {} {}", o.trace.system, preset.name, reg.label());
                all_stats.push((label, o.round_stats));
                all_csv.push(o.trace);
            }
        }
    }
    table.print();
    let refs: Vec<&mlstar_core::ConvergenceTrace> = all_csv.iter().collect();
    let path = write_artifact("fig4_mllib_vs_star.csv", &traces_to_csv(&refs));
    println!("\nwrote {}", path.display());
    if json_mode() {
        let runs: Vec<(String, &[mlstar_core::RoundStats])> = all_stats
            .iter()
            .map(|(label, s)| (label.clone(), s.as_slice()))
            .collect();
        let json = round_stats_json("fig4_mllib_vs_star", &runs);
        let path = write_artifact("fig4_round_stats.json", &json);
        println!("wrote {}", path.display());
    }
}
