//! One module per paper exhibit.

mod ablation;
mod fig1;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod table1;
mod tuning;

pub use ablation::run_ablation;
pub use fig1::run_fig1;
pub use fig3::run_fig3;
pub use fig4::run_fig4;
pub use fig5::run_fig5;
pub use fig6::run_fig6;
pub use table1::run_table1;
pub use tuning::{
    paper_scale_cluster, quick_mode, scale_for_quick, tune_system, tune_system_scaled,
};
