//! Per-system hyperparameter tuning for the figure harnesses.
//!
//! The paper: "For each system, we also tune the hyper-parameters by grid
//! search for fair comparison." [`tune_system`] runs exactly that — a
//! small learning-rate grid per system per workload — and returns the
//! winner: the run that reaches (global best over the grid + 0.01)
//! fastest in simulated time, falling back to lowest final objective.

use mlstar_core::{AngelConfig, PsSystemConfig, System, TrainConfig, TrainOutput};
use mlstar_data::SyntheticConfig;
use mlstar_glm::{LearningRate, Loss, Regularizer};
use mlstar_sim::ClusterSpec;

/// Rescales a cluster so that the *scaled-down* dataset experiences the
/// *paper-scale* compute and communication times: dividing every node's
/// FLOP rate and the network bandwidth by `data_scale` is exactly
/// equivalent to multiplying the data volume and model size by
/// `data_scale` (fixed per-task overheads and latencies are unchanged —
/// they are real constants). Used by the Figure 6 harness, where the
/// compute-vs-overhead ratio drives the scalability shape.
pub fn paper_scale_cluster(mut cluster: ClusterSpec, data_scale: f64) -> ClusterSpec {
    assert!(data_scale >= 1.0, "data_scale must be ≥ 1");
    for e in &mut cluster.executors {
        e.gflops /= data_scale;
    }
    cluster.driver.gflops /= data_scale;
    cluster.network.bandwidth_bps /= data_scale;
    cluster
}

/// True when `MLSTAR_QUICK` is set: figure harnesses shrink datasets and
/// budgets so CI / smoke runs finish in seconds.
pub fn quick_mode() -> bool {
    std::env::var("MLSTAR_QUICK").is_ok()
}

/// Applies quick-mode scaling to a preset.
pub fn scale_for_quick(cfg: SyntheticConfig) -> SyntheticConfig {
    if quick_mode() {
        cfg.scaled_down(16)
    } else {
        cfg
    }
}

fn budget(rounds: u64) -> u64 {
    if quick_mode() {
        (rounds / 16).max(4)
    } else {
        rounds
    }
}

/// The per-system training schedule: round budget, evaluation cadence,
/// batch fraction and the learning-rate grid searched.
pub(crate) fn system_schedule(system: System, k: usize) -> (u64, u64, f64, Vec<f64>) {
    match system {
        // SendGradient needs thousands of single-update rounds and large
        // rates (one aggregated gradient step per round).
        System::Mllib => (budget(3000), 25, 0.01, vec![0.2, 1.0, 4.0, 16.0]),
        // Full local pass per round: few rounds, moderate constant rates.
        // Wider clusters dilute each averaging step (each local model sees
        // 1/k of the data), so the round budget grows with k.
        System::MllibMa | System::MllibStar => {
            let rounds = 40 * (k as u64 / 8).clamp(1, 4);
            (budget(rounds), 1, 1.0, vec![0.005, 0.02, 0.1, 0.5])
        }
        // Per-batch clocks.
        System::Petuum | System::PetuumStar => {
            (budget(1200), 20, 0.05, vec![0.005, 0.02, 0.1, 0.5])
        }
        // L-BFGS: few outer iterations; the learning-rate grid is
        // irrelevant (line search chooses steps), so a single entry.
        System::SparkMl => (budget(30), 1, 1.0, vec![1.0]),
        // Per-epoch clocks; servers SUM k deltas, so stable rates scale
        // like 1/k (calibrated at k = 8). Wide clusters use coarser
        // batches (fewer dense GD steps per epoch) and a bigger epoch
        // budget — the paper tunes Angel's batch size per workload too.
        System::Angel => {
            let kf = k as f64;
            let batch_frac = if k > 16 { 0.05 } else { 0.01 };
            let epochs = if k > 16 { 240 } else { 120 };
            (
                budget(epochs),
                1,
                batch_frac,
                vec![0.024 / kf, 0.08 / kf, 0.24 / kf],
            )
        }
    }
}

/// Grid-searches the learning rate for `system` on `(ds, cluster, reg)`
/// and returns the winning run.
pub fn tune_system(
    system: System,
    ds: &mlstar_data::SparseDataset,
    cluster: &ClusterSpec,
    reg: Regularizer,
    seed: u64,
) -> TrainOutput {
    tune_system_scaled(system, ds, cluster, reg, seed, 1.0)
}

/// Like [`tune_system`] for a cluster whose compute/network rates have
/// been divided by `data_scale` (see [`paper_scale_cluster`]): Angel's
/// allocation bandwidth is scaled the same way, and MLlib's round budget
/// is capped (it will not converge within the paper's window anyway).
pub fn tune_system_scaled(
    system: System,
    ds: &mlstar_data::SparseDataset,
    cluster: &ClusterSpec,
    reg: Regularizer,
    seed: u64,
    data_scale: f64,
) -> TrainOutput {
    let k = cluster.num_executors();
    let (mut max_rounds, eval_every, batch_frac, etas) = system_schedule(system, k);
    if data_scale > 1.0 && system == System::Mllib {
        max_rounds = max_rounds.min(1200);
    }
    let ps = PsSystemConfig {
        num_servers: 2,
        staleness: 2,
        ..PsSystemConfig::default()
    };
    let angel = AngelConfig {
        num_servers: 2,
        staleness: 1,
        alloc_bandwidth_bps: 2e8 / data_scale,
        ..AngelConfig::default()
    };

    let outputs: Vec<TrainOutput> = etas
        .iter()
        .map(|&eta| {
            let cfg = TrainConfig {
                loss: Loss::Hinge,
                reg,
                lr: LearningRate::Constant(eta),
                batch_frac,
                max_rounds,
                eval_every,
                target_objective: None,
                tree_fanin: 3,
                seed,
                ..TrainConfig::default()
            };
            system.train(ds, cluster, &cfg, &ps, &angel)
        })
        .collect();

    let global_best = outputs
        .iter()
        .filter_map(|o| o.trace.best_objective())
        .fold(f64::INFINITY, f64::min);
    let target = global_best + 0.01;
    outputs
        .into_iter()
        .min_by(|a, b| {
            let score = |o: &TrainOutput| {
                (
                    o.trace.time_to_reach(target).unwrap_or(f64::INFINITY),
                    o.trace.final_objective().unwrap_or(f64::INFINITY),
                )
            };
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("grid was nonempty") // lint:allow(panic_in_lib): tuning grids are compiled-in and nonempty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_sane() {
        for system in System::ALL {
            let (rounds, eval_every, batch_frac, etas) = system_schedule(system, 8);
            assert!(rounds >= 4, "{system}");
            assert!(eval_every >= 1);
            assert!(batch_frac > 0.0 && batch_frac <= 1.0);
            assert!(!etas.is_empty());
            assert!(etas.iter().all(|e| *e > 0.0));
        }
    }

    #[test]
    fn angel_rates_scale_inversely_with_k() {
        let (_, _, _, e8) = system_schedule(System::Angel, 8);
        let (_, _, _, e32) = system_schedule(System::Angel, 32);
        assert!((e8[0] / e32[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scaling_divides_rates() {
        let base = ClusterSpec::cluster1();
        let scaled = paper_scale_cluster(base.clone(), 100.0);
        assert!((scaled.executors[0].gflops - base.executors[0].gflops / 100.0).abs() < 1e-12);
        assert!((scaled.network.bandwidth_bps - base.network.bandwidth_bps / 100.0).abs() < 1e-3);
        // Overheads and latency are real constants — unchanged.
        assert_eq!(
            scaled.executors[0].task_overhead,
            base.executors[0].task_overhead
        );
        assert_eq!(scaled.network.latency, base.network.latency);
    }

    #[test]
    fn tune_picks_a_converging_run() {
        let ds = SyntheticConfig::small("tune", 160, 20).generate();
        let cluster = ClusterSpec::uniform(
            4,
            mlstar_sim::NodeSpec::standard(),
            mlstar_sim::NetworkSpec::gbps1(),
        );
        let out = tune_system(System::MllibStar, &ds, &cluster, Regularizer::None, 7);
        let f = out.trace.final_objective().unwrap();
        assert!(f.is_finite() && f < 1.0, "tuned run should converge: {f}");
    }
}
