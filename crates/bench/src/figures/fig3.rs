//! Figure 3: Gantt charts of MLlib, MLlib + model averaging, and MLlib\*
//! training an SVM on the kdd12-like workload.
//!
//! The paper's charts track one driver and eight executors over the first
//! 300 seconds; we render the same span as ASCII (one row per node, one
//! letter per activity) and export the raw spans as CSV.

use mlstar_core::{train_mllib, train_mllib_ma, train_mllib_star, TrainOutput};
use mlstar_data::catalog;
use mlstar_sim::{ClusterSpec, NodeId, SimDuration, SimTime};

use mlstar_core::TrainConfig;
use mlstar_glm::LearningRate;

use crate::report::{banner, write_artifact};

/// Regenerates the three Gantt charts of Figure 3.
pub fn run_fig3() {
    banner("Figure 3 — Gantt charts (kdd12-like, SVM, 8 executors, L2=0)");
    let ds = super::scale_for_quick(catalog::kdd12_like()).generate();
    let cluster = ClusterSpec::cluster1();
    let reg = mlstar_glm::Regularizer::None;
    let seed = 42;

    // Budget each system to roughly the paper's viewing window by capping
    // rounds; the text renderer clips to the shared horizon.
    let mllib_c = TrainConfig {
        reg,
        lr: LearningRate::Constant(4.0),
        batch_frac: 0.01,
        max_rounds: 60,
        eval_every: 60,
        seed,
        ..TrainConfig::default()
    };
    let ma_c = TrainConfig {
        reg,
        lr: LearningRate::Constant(0.2),
        batch_frac: 1.0,
        max_rounds: 12,
        eval_every: 12,
        seed,
        ..TrainConfig::default()
    };
    let star_c = ma_c.clone();

    let runs: Vec<(&str, TrainOutput)> = vec![
        ("MLlib", train_mllib(&ds, &cluster, &mllib_c)),
        (
            "MLlib + model averaging",
            train_mllib_ma(&ds, &cluster, &ma_c),
        ),
        ("MLlib*", train_mllib_star(&ds, &cluster, &star_c)),
    ];

    // Shared horizon: the shortest makespan keeps all three readable.
    let horizon = runs
        .iter()
        .map(|(_, o)| o.gantt.makespan())
        .min()
        .unwrap_or(SimTime::ZERO)
        .max(SimTime::ZERO + SimDuration::from_secs_f64(1.0));

    for (name, out) in &runs {
        println!("--- ({name}) ---");
        print!("{}", out.gantt.render_text(96, horizon));
        let drv = out.gantt.utilization(NodeId::Driver).max(0.0);
        let avg_exec: f64 = (0..8)
            .map(|r| out.gantt.utilization(NodeId::Executor(r)))
            .sum::<f64>()
            / 8.0;
        println!(
            "driver utilization {:.0}%, mean executor utilization {:.0}%\n",
            drv * 100.0,
            avg_exec * 100.0
        );
        let slug = name.replace([' ', '+', '*'], "_").to_lowercase();
        write_artifact(&format!("fig3_gantt_{slug}.csv"), &out.gantt.to_csv());
    }
    println!("legend: C compute, B broadcast, g send-gradient, m send-model,");
    println!("        T tree-aggregate, U driver-update, R reduce-scatter, A all-gather, . wait");
    println!("\nwrote fig3_gantt_*.csv");
}
