//! Figure 5: MLlib\* vs the parameter-server systems (Petuum\*, Angel) and
//! MLlib, on the four public datasets, with and without L2.
//!
//! The paper's observations to reproduce:
//! * every SendModel system beats MLlib by a wide margin;
//! * with L2 = 0, MLlib\* ≈ Petuum\* ≥ Angel;
//! * with L2 = 0.1, MLlib\* wins (lazy sparse updates), Angel beats
//!   Petuum\* (per-epoch vs per-batch amortization of a single update).
//!
//! Every system is tuned per workload by grid search, as in the paper.

use mlstar_core::{reference_optimum, ConvergenceTrace, System, TrainOutput};
use mlstar_data::catalog;
use mlstar_glm::{Loss, Regularizer};
use mlstar_sim::ClusterSpec;

use crate::figures::tuning::{quick_mode, tune_system};
use crate::report::{ascii_convergence, banner, fmt_opt, traces_to_csv, write_artifact, Table};

/// Regenerates the Figure 5 grid.
pub fn run_fig5() {
    banner("Figure 5 — MLlib* vs parameter servers (4 datasets × {L2=0, L2=0.1})");
    let cluster = ClusterSpec::cluster1();
    let seed = 42;
    let ref_epochs = if quick_mode() { 5 } else { 25 };
    let mut table = Table::new(&[
        "dataset", "reg", "target f", "MLlib", "Angel", "Petuum*", "MLlib*", "winner",
    ]);
    let mut all_traces: Vec<ConvergenceTrace> = Vec::new();

    for preset in catalog::public_presets() {
        let ds = super::scale_for_quick(preset.clone()).generate();
        for reg in [Regularizer::None, Regularizer::L2 { lambda: 0.1 }] {
            let opt = reference_optimum(&ds, Loss::Hinge, reg, ref_epochs, seed);
            let runs: Vec<TrainOutput> = [
                System::Mllib,
                System::Angel,
                System::PetuumStar,
                System::MllibStar,
            ]
            .into_iter()
            .map(|s| tune_system(s, &ds, &cluster, reg, seed))
            .collect();
            let best = runs
                .iter()
                .filter_map(|o| o.trace.best_objective())
                .fold(opt, f64::min);
            let target = best + 0.01;

            let times: Vec<Option<f64>> =
                runs.iter().map(|o| o.trace.time_to_reach(target)).collect();
            let winner = runs
                .iter()
                .zip(times.iter())
                .filter_map(|(o, t)| t.map(|t| (o.trace.system.clone(), t)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map_or("—".to_owned(), |(name, _)| name);

            table.row(&[
                preset.name.clone(),
                reg.label(),
                format!("{target:.3}"),
                fmt_opt(times[0], "s"),
                fmt_opt(times[1], "s"),
                fmt_opt(times[2], "s"),
                fmt_opt(times[3], "s"),
                winner,
            ]);

            println!("({}, {})", preset.name, reg.label());
            let refs: Vec<&ConvergenceTrace> = runs.iter().map(|o| &o.trace).collect();
            print!("{}", ascii_convergence(&refs, 72, 12));
            println!();
            all_traces.extend(runs.into_iter().map(|o| o.trace));
        }
    }
    println!("time to reach target objective (simulated seconds):");
    table.print();
    let refs: Vec<&ConvergenceTrace> = all_traces.iter().collect();
    let path = write_artifact("fig5_vs_parameter_servers.csv", &traces_to_csv(&refs));
    println!("\nwrote {}", path.display());
}
