//! Report formatting and CSV/JSON output shared by the figure harnesses.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use mlstar_core::{ConvergenceTrace, RoundStats};

/// Whether the exhibit was invoked with `--json` (set by
/// [`crate::cli::exhibit_args`]): harnesses that have a structured report
/// additionally write it as a JSON artifact.
static JSON_MODE: AtomicBool = AtomicBool::new(false);

/// Turns `--json` artifact output on (or off).
pub fn set_json_mode(on: bool) {
    JSON_MODE.store(on, Ordering::Relaxed);
}

/// True when the exhibit should also emit JSON artifacts.
pub fn json_mode() -> bool {
    JSON_MODE.load(Ordering::Relaxed)
}

/// The output directory for CSV artifacts (`bench_results/` by default,
/// overridable via `MLSTAR_OUT`). Created on first use.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("MLSTAR_OUT").unwrap_or_else(|_| "bench_results".to_owned());
    let path = PathBuf::from(dir);
    // lint:allow(panic_in_lib): the bench harness aborts on I/O failure by design
    std::fs::create_dir_all(&path).expect("create bench output directory");
    path
}

/// Writes `content` to `<out_dir>/<name>` and returns the path.
pub fn write_artifact(name: &str, content: &str) -> PathBuf {
    let path = out_dir().join(name);
    // lint:allow(panic_in_lib): the bench harness aborts on I/O failure by design
    let mut f = std::fs::File::create(&path).expect("create artifact file");
    f.write_all(content.as_bytes()).expect("write artifact"); // lint:allow(panic_in_lib): the bench harness aborts on I/O failure by design
    path
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$} | ", cell, w = widths[c]));
            }
            line.trim_end().to_owned()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| format!("|{}", "-".repeat(w + 2)))
            .collect();
        out.push_str(&format!("{sep}|\n"));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats an optional value, using `"—"` for `None` (the paper's figures
/// mark systems that never reach the threshold the same way).
pub fn fmt_opt(v: Option<f64>, unit: &str) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.2}{unit}"),
        Some(_) => "∞".to_owned(),
        None => "—".to_owned(),
    }
}

/// Formats a speedup multiplier (`"12.3×"`, `"∞"`, or `"—"`).
pub fn fmt_speedup(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.1}×"),
        Some(_) => "∞".to_owned(),
        None => "—".to_owned(),
    }
}

/// A run's per-phase sim-time totals, folded over its [`RoundStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseSummary {
    /// Total per-round compute time (averaged over nodes within a round).
    pub compute_s: f64,
    /// Total communication time.
    pub comm_s: f64,
    /// Total straggler-idle time.
    pub idle_s: f64,
    /// Total failure-recovery time.
    pub recovery_s: f64,
    /// Total elapsed sim time across the rounds.
    pub elapsed_s: f64,
    /// Total bytes moved across all communication patterns.
    pub bytes: u64,
    /// Total model updates performed.
    pub updates: u64,
}

impl PhaseSummary {
    /// Renders the compute/comm/idle split as percentages of elapsed time
    /// (recovery, when present, is folded into the remainder).
    pub fn fmt_split(&self) -> String {
        if self.elapsed_s <= 0.0 {
            return "—".to_owned();
        }
        let pct = |x: f64| (x / self.elapsed_s * 100.0).round();
        format!(
            "{:.0}/{:.0}/{:.0}%",
            pct(self.compute_s),
            pct(self.comm_s),
            pct(self.idle_s + self.recovery_s)
        )
    }
}

/// Folds a run's [`RoundStats`] into per-phase totals.
pub fn summarize_rounds(rounds: &[RoundStats]) -> PhaseSummary {
    let mut s = PhaseSummary::default();
    for r in rounds {
        s.compute_s += r.compute_s;
        s.comm_s += r.comm_s;
        s.idle_s += r.idle_s;
        s.recovery_s += r.recovery_s;
        s.elapsed_s += r.elapsed_s;
        s.bytes += r.bytes.total();
        s.updates += r.updates;
    }
    s
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values round-trip; non-finite
/// values — which our reports never produce — degrade to `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Serializes one round's telemetry as a JSON object.
fn round_to_json(r: &RoundStats) -> String {
    format!(
        concat!(
            "{{\"round\":{},\"updates\":{},\"flops\":{},",
            "\"compute_s\":{},\"comm_s\":{},\"idle_s\":{},\"recovery_s\":{},",
            "\"elapsed_s\":{},\"bytes\":{{\"broadcast\":{},\"tree_aggregate\":{},",
            "\"reduce_scatter\":{},\"all_gather\":{},\"ps_pull\":{},\"ps_push\":{},",
            "\"total\":{}}}}}"
        ),
        r.round,
        r.updates,
        json_f64(r.flops),
        json_f64(r.compute_s),
        json_f64(r.comm_s),
        json_f64(r.idle_s),
        json_f64(r.recovery_s),
        json_f64(r.elapsed_s),
        r.bytes.broadcast,
        r.bytes.tree_aggregate,
        r.bytes.reduce_scatter,
        r.bytes.all_gather,
        r.bytes.ps_pull,
        r.bytes.ps_push,
        r.bytes.total(),
    )
}

/// Serializes per-run round telemetry into a JSON report: one entry per
/// labeled run, each with its per-round records and folded totals (the
/// compute/comm/idle breakdown the `--json` mode exists for).
pub fn round_stats_json(report: &str, runs: &[(String, &[RoundStats])]) -> String {
    let mut out = format!("{{\"report\":\"{}\",\"runs\":[", json_escape(report));
    for (i, (label, rounds)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = summarize_rounds(rounds);
        out.push_str(&format!(
            concat!(
                "{{\"label\":\"{}\",\"totals\":{{\"compute_s\":{},\"comm_s\":{},",
                "\"idle_s\":{},\"recovery_s\":{},\"elapsed_s\":{},\"bytes\":{},",
                "\"updates\":{}}},\"rounds\":["
            ),
            json_escape(label),
            json_f64(s.compute_s),
            json_f64(s.comm_s),
            json_f64(s.idle_s),
            json_f64(s.recovery_s),
            json_f64(s.elapsed_s),
            s.bytes,
            s.updates,
        ));
        for (j, r) in rounds.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&round_to_json(r));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// One serving run's headline numbers, as plain fields so this module
/// needs no dependency on `mlstar-serve` (the serve bench fills it from
/// its telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSummary {
    /// Worker shards the engine scored with.
    pub shards: usize,
    /// Requests scored.
    pub requests: u64,
    /// Micro-batches formed.
    pub batches: usize,
    /// Mean batch fill ratio (size / max batch).
    pub mean_fill: f64,
    /// Mean queue depth observed at batch close.
    pub mean_queue_depth: f64,
    /// Virtual-time throughput in requests/s.
    pub throughput_rps: f64,
    /// Queue-latency percentiles in seconds (p50, p95, p99).
    pub queue_p: [f64; 3],
    /// Score-latency percentiles in seconds.
    pub score_p: [f64; 3],
    /// Merge-latency percentiles in seconds.
    pub merge_p: [f64; 3],
}

/// Serializes one latency percentile triple.
fn percentiles_json(p: &[f64; 3]) -> String {
    format!(
        "{{\"p50\":{},\"p95\":{},\"p99\":{}}}",
        json_f64(p[0]),
        json_f64(p[1]),
        json_f64(p[2])
    )
}

/// Serializes labeled serving runs into a JSON report with the same
/// top-level shape as [`round_stats_json`] (`report` + `runs` array), so
/// downstream tooling can ingest both.
pub fn serve_stats_json(report: &str, runs: &[(String, ServeSummary)]) -> String {
    let mut out = format!("{{\"report\":\"{}\",\"runs\":[", json_escape(report));
    for (i, (label, s)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"label\":\"{}\",\"shards\":{},\"requests\":{},",
                "\"batching\":{{\"batches\":{},\"mean_fill\":{},\"mean_queue_depth\":{}}},",
                "\"throughput_rps\":{},",
                "\"latency_s\":{{\"queue\":{},\"score\":{},\"merge\":{}}}}}"
            ),
            json_escape(label),
            s.shards,
            s.requests,
            s.batches,
            json_f64(s.mean_fill),
            json_f64(s.mean_queue_depth),
            json_f64(s.throughput_rps),
            percentiles_json(&s.queue_p),
            percentiles_json(&s.score_p),
            percentiles_json(&s.merge_p),
        ));
    }
    out.push_str("]}\n");
    out
}

/// One cross-validated lambda-path run's headline numbers, as plain
/// fields so this module needs no dependency on the CV scheduler (the
/// path bench fills it from [`mlstar_core::CvResult`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PathCvSummary {
    /// Simulated executors the fold chains were scheduled on.
    pub executors: usize,
    /// Folds K.
    pub folds: usize,
    /// Grid size L.
    pub n_lambdas: usize,
    /// ℓ₁ ratio α of the elastic-net penalty.
    pub l1_ratio: f64,
    /// `λ_max` anchoring the grid.
    pub lambda_max: f64,
    /// The winning λ.
    pub best_lambda: f64,
    /// Index of the winning λ in the (decreasing) grid.
    pub best_lambda_idx: usize,
    /// Mean held-out loss at the winning λ.
    pub best_val_loss: f64,
    /// Coordinate-descent sweeps summed over all jobs.
    pub total_sweeps: usize,
    /// Jobs scheduled (folds × lambdas).
    pub jobs: usize,
    /// End of the simulated timeline, seconds.
    pub makespan_s: f64,
    /// Wall-clock milliseconds the solve actually took.
    pub wall_ms: f64,
}

/// Serializes labeled path-CV runs into a JSON report with the same
/// top-level shape as [`round_stats_json`] (`report` + `runs` array), so
/// downstream tooling can ingest both.
pub fn path_stats_json(report: &str, runs: &[(String, PathCvSummary)]) -> String {
    let mut out = format!("{{\"report\":\"{}\",\"runs\":[", json_escape(report));
    for (i, (label, s)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"label\":\"{}\",\"executors\":{},\"folds\":{},",
                "\"n_lambdas\":{},\"l1_ratio\":{},",
                "\"grid\":{{\"lambda_max\":{},\"best_lambda\":{},",
                "\"best_lambda_idx\":{},\"best_val_loss\":{}}},",
                "\"work\":{{\"jobs\":{},\"total_sweeps\":{}}},",
                "\"makespan_s\":{},\"wall_ms\":{}}}"
            ),
            json_escape(label),
            s.executors,
            s.folds,
            s.n_lambdas,
            json_f64(s.l1_ratio),
            json_f64(s.lambda_max),
            json_f64(s.best_lambda),
            s.best_lambda_idx,
            json_f64(s.best_val_loss),
            s.jobs,
            s.total_sweeps,
            json_f64(s.makespan_s),
            json_f64(s.wall_ms),
        ));
    }
    out.push_str("]}\n");
    out
}

/// Concatenates trace CSVs (single header).
pub fn traces_to_csv(traces: &[&ConvergenceTrace]) -> String {
    let mut out = String::from("system,workload,step,time_s,objective,total_updates\n");
    for t in traces {
        let csv = t.to_csv();
        // Skip the per-trace header line.
        for line in csv.lines().skip(1) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Renders an ASCII convergence plot (objective vs. log₁₀ time), one
/// letter per system — a terminal rendition of the paper's right-hand
/// subplots.
pub fn ascii_convergence(traces: &[&ConvergenceTrace], width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(5);
    let mut tmin = f64::INFINITY;
    let mut tmax: f64 = 0.0;
    let mut fmin = f64::INFINITY;
    let mut fmax = f64::NEG_INFINITY;
    for t in traces {
        for p in &t.points {
            let secs = p.time.as_secs_f64().max(1e-3);
            tmin = tmin.min(secs);
            tmax = tmax.max(secs);
            if p.objective.is_finite() {
                fmin = fmin.min(p.objective);
                fmax = fmax.max(p.objective);
            }
        }
    }
    if !tmin.is_finite() || fmin >= fmax {
        return String::from("(no plottable data)\n");
    }
    let (ltmin, ltmax) = (tmin.log10(), tmax.log10().max(tmin.log10() + 1e-9));
    let mut grid = vec![vec![' '; width]; height];
    for (idx, t) in traces.iter().enumerate() {
        let code = t.system.chars().next().unwrap_or('?');
        let code = if idx > 0 && traces[..idx].iter().any(|u| u.system.starts_with(code)) {
            // Disambiguate systems sharing an initial (MLlib vs MLlib*).
            char::from_digit(idx as u32 % 10, 10).unwrap_or('?')
        } else {
            code
        };
        for p in &t.points {
            if !p.objective.is_finite() {
                continue;
            }
            let secs = p.time.as_secs_f64().max(1e-3);
            let x =
                ((secs.log10() - ltmin) / (ltmax - ltmin) * (width - 1) as f64).round() as usize;
            let y = ((fmax - p.objective) / (fmax - fmin) * (height - 1) as f64).round() as usize;
            grid[height - 1 - y.min(height - 1)][x.min(width - 1)] = code;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "objective {fmax:.3} (top) → {fmin:.3} (bottom); time {tmin:.2}s → {tmax:.1}s (log)\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    // Legend.
    out.push_str("legend: ");
    for (idx, t) in traces.iter().enumerate() {
        let code = t.system.chars().next().unwrap_or('?');
        let code = if idx > 0 && traces[..idx].iter().any(|u| u.system.starts_with(code)) {
            char::from_digit(idx as u32 % 10, 10).unwrap_or('?')
        } else {
            code
        };
        out.push_str(&format!("{code}={} ", t.system));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlstar_core::TracePoint;
    use mlstar_sim::{SimDuration, SimTime};

    fn trace(name: &str, pts: &[(u64, f64, f64)]) -> ConvergenceTrace {
        let mut t = ConvergenceTrace::new(name, "w");
        for &(step, secs, obj) in pts {
            t.push(TracePoint {
                step,
                time: SimTime::ZERO + SimDuration::from_secs_f64(secs),
                objective: obj,
                total_updates: step,
            });
        }
        t
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| name        | value |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_opt(Some(1.5), "s"), "1.50s");
        assert_eq!(fmt_opt(Some(f64::INFINITY), "s"), "∞");
        assert_eq!(fmt_opt(None, "s"), "—");
        assert_eq!(fmt_speedup(Some(12.34)), "12.3×");
        assert_eq!(fmt_speedup(None), "—");
    }

    #[test]
    fn csv_concatenation_has_single_header() {
        let a = trace("A", &[(0, 0.1, 1.0), (1, 1.0, 0.5)]);
        let b = trace("B", &[(0, 0.1, 1.0)]);
        let csv = traces_to_csv(&[&a, &b]);
        assert_eq!(csv.lines().filter(|l| l.starts_with("system,")).count(), 1);
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn ascii_plot_contains_both_series() {
        let a = trace("MLlib", &[(0, 0.1, 1.0), (1, 10.0, 0.8)]);
        let b = trace("MLlib*", &[(0, 0.1, 1.0), (1, 1.0, 0.2)]);
        let plot = ascii_convergence(&[&a, &b], 40, 10);
        assert!(plot.contains('M'));
        assert!(plot.contains('1'), "second trace disambiguated: {plot}");
        assert!(plot.contains("legend:"));
    }

    #[test]
    fn ascii_plot_handles_degenerate_input() {
        let a = trace("X", &[(0, 1.0, 0.5)]);
        let plot = ascii_convergence(&[&a], 40, 10);
        assert!(plot.contains("no plottable data"));
    }

    fn sample_round(round: u64) -> RoundStats {
        let mut r = RoundStats {
            round,
            updates: 3,
            flops: 1e6,
            compute_s: 0.6,
            comm_s: 0.3,
            idle_s: 0.08,
            recovery_s: 0.02,
            elapsed_s: 1.0,
            ..RoundStats::default()
        };
        r.bytes.broadcast = 100;
        r.bytes.tree_aggregate = 200;
        r
    }

    #[test]
    fn phase_summary_folds_rounds() {
        let rounds = [sample_round(0), sample_round(1)];
        let s = summarize_rounds(&rounds);
        assert_eq!(s.updates, 6);
        assert_eq!(s.bytes, 600);
        assert!((s.elapsed_s - 2.0).abs() < 1e-12);
        assert_eq!(s.fmt_split(), "60/30/10%");
        assert_eq!(PhaseSummary::default().fmt_split(), "—");
    }

    #[test]
    fn round_stats_json_is_well_formed() {
        let rounds = [sample_round(0)];
        let json = round_stats_json("demo \"quoted\"", &[("MLlib*".to_owned(), &rounds[..])]);
        assert!(json.starts_with("{\"report\":\"demo \\\"quoted\\\"\""));
        assert!(json.contains("\"label\":\"MLlib*\""));
        assert!(json.contains("\"compute_s\":0.6"));
        assert!(json.contains("\"broadcast\":100"));
        assert!(json.contains("\"total\":300"));
        // Balanced braces/brackets (cheap well-formedness probe).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn serve_stats_json_is_well_formed() {
        let s = ServeSummary {
            shards: 4,
            requests: 1024,
            batches: 40,
            mean_fill: 0.8,
            mean_queue_depth: 2.5,
            throughput_rps: 18_000.0,
            queue_p: [1e-4, 2e-4, 4e-4],
            score_p: [1e-5, 2e-5, 2e-5],
            merge_p: [5e-6, 5e-6, 5e-6],
        };
        let json = serve_stats_json("serve demo", &[("shards=4".to_owned(), s)]);
        assert!(json.starts_with("{\"report\":\"serve demo\""));
        assert!(json.contains("\"label\":\"shards=4\""));
        assert!(json.contains("\"shards\":4"));
        assert!(json.contains("\"requests\":1024"));
        assert!(json.contains("\"mean_fill\":0.8"));
        assert!(json.contains("\"throughput_rps\":18000"));
        assert!(json.contains("\"queue\":{\"p50\":0.0001"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn path_stats_json_is_well_formed() {
        let s = PathCvSummary {
            executors: 4,
            folds: 5,
            n_lambdas: 20,
            l1_ratio: 1.0,
            lambda_max: 0.25,
            best_lambda: 0.025,
            best_lambda_idx: 12,
            best_val_loss: 0.31,
            total_sweeps: 840,
            jobs: 100,
            makespan_s: 1.75,
            wall_ms: 12.5,
        };
        let json = path_stats_json("path demo", &[("E=4".to_owned(), s)]);
        assert!(json.starts_with("{\"report\":\"path demo\""));
        assert!(json.contains("\"label\":\"E=4\""));
        assert!(json.contains("\"executors\":4"));
        assert!(json.contains("\"best_lambda\":0.025"));
        assert!(json.contains("\"total_sweeps\":840"));
        assert!(json.contains("\"makespan_s\":1.75"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn json_mode_toggles() {
        assert!(!json_mode());
        set_json_mode(true);
        assert!(json_mode());
        set_json_mode(false);
    }

    #[test]
    fn artifacts_are_written() {
        std::env::set_var("MLSTAR_OUT", std::env::temp_dir().join("mlstar_bench_test"));
        let p = write_artifact("probe.csv", "a,b\n1,2\n");
        assert!(p.exists());
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "a,b\n1,2\n");
        std::fs::remove_file(p).ok();
        std::env::remove_var("MLSTAR_OUT");
    }
}
