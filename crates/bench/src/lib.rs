//! Benchmark harness regenerating every table and figure of the MLlib\*
//! paper.
//!
//! Each `run_*` function prints a report in the shape of the corresponding
//! paper exhibit and writes the underlying series as CSV into
//! `bench_results/` (override with the `MLSTAR_OUT` environment variable).
//!
//! | Exhibit | Function | Binary |
//! |---|---|---|
//! | Table I | [`figures::run_table1`] | `table1` |
//! | Figure 1 | [`figures::run_fig1`] | `fig1_workloads` |
//! | Figure 3 | [`figures::run_fig3`] | `fig3_gantt` |
//! | Figure 4 | [`figures::run_fig4`] | `fig4_mllib_vs_star` |
//! | Figure 5 | [`figures::run_fig5`] | `fig5_vs_ps` |
//! | Figure 6 | [`figures::run_fig6`] | `fig6_scalability` |
//! | (ours) ablations | [`figures::run_ablation`] | `ablation` |
//!
//! `cargo bench -p mlstar-bench` additionally runs the Criterion
//! microbenches (`linalg_ops`, `sgd_epoch`, `collectives_cost`,
//! `end_to_end`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod figures;
pub mod report;
