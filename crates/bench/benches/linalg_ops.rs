//! Criterion microbenches for the vector kernels on the hot training path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mlstar_linalg::{average, DenseVector, ScaledVector, SparseVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_sparse(rng: &mut StdRng, dim: usize, nnz: usize) -> SparseVector {
    let mut pairs = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        pairs.push((rng.gen_range(0..dim as u32), rng.gen_range(-1.0..1.0)));
    }
    SparseVector::from_pairs(dim, &pairs).expect("valid pairs")
}

fn random_dense(rng: &mut StdRng, dim: usize) -> DenseVector {
    DenseVector::from_vec((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

fn bench_sparse_dot(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("sparse_dot_dense");
    for &nnz in &[16usize, 128, 1024] {
        let dim = 100_000;
        let s = random_sparse(&mut rng, dim, nnz);
        let d = random_dense(&mut rng, dim);
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |b, _| {
            b.iter(|| std::hint::black_box(d.dot_sparse(&s)))
        });
    }
    group.finish();
}

fn bench_axpy_sparse(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let dim = 100_000;
    let s = random_sparse(&mut rng, dim, 128);
    let d = random_dense(&mut rng, dim);
    c.bench_function("axpy_sparse_128nnz", |b| {
        b.iter_batched(
            || d.clone(),
            |mut v| {
                v.axpy_sparse(0.1, &s);
                v
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_scaled_vs_dense_shrink(c: &mut Criterion) {
    // The core of the lazy-L2 trick: O(1) scale vs O(d) dense scale.
    let mut rng = StdRng::seed_from_u64(3);
    let dim = 100_000;
    let d = random_dense(&mut rng, dim);
    let mut group = c.benchmark_group("l2_shrink_step");
    group.bench_function("lazy_scaled", |b| {
        b.iter_batched(
            || ScaledVector::from_dense(d.clone()),
            |mut v| {
                for _ in 0..100 {
                    v.scale_by(0.999);
                }
                v
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("eager_dense", |b| {
        b.iter_batched(
            || d.clone(),
            |mut v| {
                for _ in 0..100 {
                    v.scale(0.999);
                }
                v
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_average(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let vs: Vec<DenseVector> = (0..8).map(|_| random_dense(&mut rng, 50_000)).collect();
    c.bench_function("average_8x50k", |b| {
        b.iter(|| std::hint::black_box(average(&vs)))
    });
}

criterion_group!(
    benches,
    bench_sparse_dot,
    bench_axpy_sparse,
    bench_scaled_vs_dense_shrink,
    bench_average
);
criterion_main!(benches);
