//! Criterion benches: host time of full (small) training runs per system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlstar_core::{System, TrainConfig};
use mlstar_data::SyntheticConfig;
use mlstar_glm::LearningRate;
use mlstar_sim::ClusterSpec;

fn bench_systems(c: &mut Criterion) {
    let ds = SyntheticConfig {
        name: "e2e".into(),
        num_instances: 2_000,
        num_features: 2_000,
        avg_nnz: 15,
        feature_skew: 1.6,
        margin_noise: 0.2,
        flip_prob: 0.02,
        binary_features: true,
        margin_scale: 3.0,
        informative_features: 0,
        popular_fraction: 0.0,
        seed: 11,
    }
    .generate();
    let cluster = ClusterSpec::cluster1();
    let cfg = TrainConfig {
        lr: LearningRate::Constant(0.01),
        max_rounds: 5,
        eval_every: 5,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("train_5_rounds_2000x2000");
    group.sample_size(10);
    for system in System::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.name()),
            &system,
            |b, s| b.iter(|| std::hint::black_box(s.train_default(&ds, &cluster, &cfg))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_systems);
criterion_main!(benches);
