//! Criterion benches for the collectives: host-time cost of the real data
//! movement (the simulated-time comparison lives in the figure harnesses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlstar_collectives::{all_reduce_average, broadcast_model, tree_aggregate};
use mlstar_linalg::DenseVector;
use mlstar_sim::{
    Activity, ClusterSpec, CostModel, GanttRecorder, NetworkSpec, NodeId, NodeSpec, RoundBuilder,
    SimTime,
};

fn harness(k: usize) -> (CostModel, Vec<NodeId>, Vec<NodeId>) {
    let cost = CostModel::new(ClusterSpec::uniform(
        k,
        NodeSpec::standard(),
        NetworkSpec::gbps1(),
    ));
    let exec: Vec<NodeId> = (0..k).map(NodeId::Executor).collect();
    let mut all = vec![NodeId::Driver];
    all.extend(exec.iter().copied());
    (cost, all, exec)
}

fn locals(k: usize, dim: usize) -> Vec<DenseVector> {
    (0..k)
        .map(|r| DenseVector::from_vec((0..dim).map(|i| ((r + i) % 17) as f64).collect()))
        .collect()
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce_average");
    for &dim in &[10_000usize, 100_000] {
        let (cost, _, exec) = harness(8);
        let vs = locals(8, dim);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| {
                let mut g = GanttRecorder::new();
                let mut rb = RoundBuilder::new(&mut g, 0, SimTime::ZERO, &exec);
                std::hint::black_box(all_reduce_average(&mut rb, &cost, &vs))
            })
        });
    }
    group.finish();
}

fn bench_tree_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_aggregate_fanin");
    let (cost, all, _) = harness(8);
    let vs = locals(8, 100_000);
    for &fanin in &[2usize, 3, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(fanin), &fanin, |b, _| {
            b.iter(|| {
                let mut g = GanttRecorder::new();
                let mut rb = RoundBuilder::new(&mut g, 0, SimTime::ZERO, &all);
                std::hint::black_box(tree_aggregate(
                    &mut rb,
                    &cost,
                    &vs,
                    fanin,
                    Activity::SendModel,
                ))
            })
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let (cost, all, _) = harness(8);
    c.bench_function("broadcast_100k", |b| {
        b.iter(|| {
            let mut g = GanttRecorder::new();
            let mut rb = RoundBuilder::new(&mut g, 0, SimTime::ZERO, &all);
            std::hint::black_box(broadcast_model(&mut rb, &cost, 100_000))
        })
    });
}

criterion_group!(
    benches,
    bench_allreduce,
    bench_tree_aggregate,
    bench_broadcast
);
criterion_main!(benches);
