//! Criterion benches for the SGD epoch kernels — in particular the
//! lazy-vs-eager L2 ablation (Bottou's trick) measured in real host time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mlstar_data::SyntheticConfig;
use mlstar_glm::{
    batch_gradient, sgd_epoch_eager, sgd_epoch_lazy, LearningRate, Loss, Regularizer,
};
use mlstar_linalg::{DenseVector, ScaledVector};

fn dataset() -> mlstar_data::SparseDataset {
    SyntheticConfig {
        name: "bench".into(),
        num_instances: 2_000,
        num_features: 20_000,
        avg_nnz: 20,
        feature_skew: 1.6,
        margin_noise: 0.2,
        flip_prob: 0.02,
        binary_features: true,
        margin_scale: 3.0,
        informative_features: 0,
        popular_fraction: 0.0,
        seed: 7,
    }
    .generate()
}

fn bench_lazy_vs_eager_l2(c: &mut Criterion) {
    let ds = dataset();
    let order: Vec<usize> = (0..ds.len()).collect();
    let reg = Regularizer::L2 { lambda: 0.1 };
    let lr = LearningRate::Constant(0.01);
    let mut group = c.benchmark_group("l2_sgd_epoch_2000x20000");
    group.sample_size(20);
    group.bench_function("lazy_scaled_vector", |b| {
        b.iter_batched(
            || ScaledVector::zeros(ds.num_features()),
            |mut w| {
                sgd_epoch_lazy(
                    Loss::Hinge,
                    reg,
                    &mut w,
                    ds.rows(),
                    ds.labels(),
                    &order,
                    lr,
                    0,
                );
                w
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("eager_dense", |b| {
        b.iter_batched(
            || DenseVector::zeros(ds.num_features()),
            |mut w| {
                sgd_epoch_eager(
                    Loss::Hinge,
                    reg,
                    &mut w,
                    ds.rows(),
                    ds.labels(),
                    &order,
                    lr,
                    0,
                );
                w
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_unregularized_epoch(c: &mut Criterion) {
    let ds = dataset();
    let order: Vec<usize> = (0..ds.len()).collect();
    let lr = LearningRate::Constant(0.01);
    c.bench_function("plain_sgd_epoch_2000x20000", |b| {
        b.iter_batched(
            || ScaledVector::zeros(ds.num_features()),
            |mut w| {
                sgd_epoch_lazy(
                    Loss::Hinge,
                    Regularizer::None,
                    &mut w,
                    ds.rows(),
                    ds.labels(),
                    &order,
                    lr,
                    0,
                );
                w
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_batch_gradient(c: &mut Criterion) {
    let ds = dataset();
    let w = DenseVector::zeros(ds.num_features());
    let batch: Vec<usize> = (0..200).collect();
    c.bench_function("batch_gradient_200", |b| {
        b.iter(|| {
            std::hint::black_box(batch_gradient(
                Loss::Hinge,
                &w,
                ds.rows(),
                ds.labels(),
                &batch,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_lazy_vs_eager_l2,
    bench_unregularized_epoch,
    bench_batch_gradient
);
criterion_main!(benches);
