//! Runs every paper-exhibit harness under `cargo bench`.
//!
//! This is a plain (non-Criterion) bench target so that
//! `cargo bench --workspace` regenerates every table and figure of the
//! paper in one go. Set `MLSTAR_QUICK=1` for a fast smoke run.
fn main() {
    mlstar_bench::figures::run_table1();
    mlstar_bench::figures::run_fig1();
    mlstar_bench::figures::run_fig3();
    mlstar_bench::figures::run_fig4();
    mlstar_bench::figures::run_fig5();
    mlstar_bench::figures::run_fig6();
    mlstar_bench::figures::run_ablation();
}
