//@ path: crates/serve/src/demo_codec.rs
//@ expect:

//! A symmetric codec pair exercising every sequence feature: a tagged
//! branch whose arms share the leading tag byte, a counted loop, a
//! same-file helper that gets inlined, and envelope ops (invisible).

use mlstar_codec::{CodecError, Reader, Writer};

const DEMO_MAGIC: u32 = 0x4D4C_5344;

pub fn put_record(w: &mut Writer, name: &str, values: &[f64], staged: Option<u64>) {
    w.put_str16(name);
    match staged {
        Some(v) => {
            w.put_u8(1);
            w.put_u64(v);
        }
        None => {
            w.put_u8(0);
        }
    }
    w.put_u64(values.len() as u64);
    for &v in values {
        put_value(w, v);
    }
}

fn put_value(w: &mut Writer, v: f64) {
    w.put_f64(v);
}

pub fn get_record(r: &mut Reader<'_>) -> Result<(String, Vec<f64>, Option<u64>), CodecError> {
    let name = r.str16()?;
    let staged = match r.u8()? {
        1 => Some(r.u64()?),
        _ => None,
    };
    let n = r.u64()? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_value(r)?);
    }
    Ok((name, values, staged))
}

fn read_value(r: &mut Reader<'_>) -> Result<f64, CodecError> {
    r.f64()
}

pub fn encode_record(name: &str, values: &[f64]) -> Vec<u8> {
    let mut w = Writer::new();
    put_record(&mut w, name, values, None);
    w.into_frame(DEMO_MAGIC, 1)
}
