//@ path: crates/cluster/src/demo.rs
//@ expect:

//! Forbidden tokens in comments: HashMap, Instant::now(), thread_rng().

/// Doc example with a panic:
/// ```
/// let v: u32 = "7".parse().unwrap();
/// ```
pub fn doc_example() {}

pub const HELP: &str = "never use HashMap, Instant::now, or .unwrap() here";

pub const RAW: &str = r#"thread_rng() and "rand::random" in a raw string"#;

pub const MULTI: &str = "line one .expect(
line two SystemTime::now continues the string";

/* block comment: x == 1.0 and println!("x") are fine here
   /* nested: HashSet::new() */
   still commented */
pub fn quoted_quote() -> char {
    '"' // a char literal holding a quote must not open a string
}

pub fn lifetimes<'a>(s: &'a str) -> &'a str {
    s
}
