//@ path: crates/cluster/src/demo.rs
//@ expect:

use std::collections::{BTreeMap, BTreeSet};

pub fn routing_table() -> BTreeMap<u32, Vec<u32>> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    seen.insert(1);
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_is_fine_in_tests() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
