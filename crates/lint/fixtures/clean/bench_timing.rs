//@ path: crates/bench/src/demo.rs
//@ expect:

use std::time::Instant;

pub fn measure(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
