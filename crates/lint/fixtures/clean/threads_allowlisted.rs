//@ path: crates/serve/src/engine.rs
//@ expect:

//! Scoped host-parallelism in an allowlisted module is accepted.

pub fn fan_out(xs: &mut [u64]) {
    std::thread::scope(|scope| {
        for chunk in xs.chunks_mut(2) {
            scope.spawn(move || {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            });
        }
    });
}
