//@ path: crates/core/src/exec.rs
//@ expect:

//! Orchestrator-side sampling is the designed home for every RNG: no
//! worker entry point (`net::worker` pub fn or `run_ops` impl) reaches
//! this, so rng_placement stays quiet.

use mlstar_cluster::rng::SeedStream;

pub fn plan_partition_rows(seed: u64, rows: usize, take: usize) -> Vec<u64> {
    let stream = SeedStream::new(seed).child("partition");
    let mut out = Vec::with_capacity(take.min(rows));
    let mut state = stream.seed();
    for _ in 0..take.min(rows) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.push(state % rows.max(1) as u64);
    }
    out
}
