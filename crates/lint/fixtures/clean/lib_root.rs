//@ path: crates/data/src/lib.rs
//@ expect:

#![forbid(unsafe_code)]
//! A well-behaved crate root.

pub fn f() -> u32 {
    7
}
