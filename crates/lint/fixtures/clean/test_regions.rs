//@ path: crates/glm/src/demo.rs
//@ expect:

pub fn lib_code(x: f64) -> f64 {
    (x - 1.0).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn unwraps_and_float_eq_are_fine_here() {
        let m: HashMap<u32, f64> = HashMap::new();
        assert!(m.get(&1).copied().unwrap_or(1.0) == 1.0);
        let v: u32 = "3".parse().unwrap();
        assert_eq!(v, 3);
    }
}

#[cfg(all(test, feature = "slow"))]
mod slow_tests {
    #[test]
    fn also_a_test_region() {
        let x: f64 = "1.0".parse().expect("literal");
        assert!(x == 1.0);
    }
}
