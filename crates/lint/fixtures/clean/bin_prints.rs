//@ path: crates/bench/src/bin/demo.rs
//@ expect:

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let n: u32 = arg.parse().unwrap_or(0);
    println!("n = {n}");
}
