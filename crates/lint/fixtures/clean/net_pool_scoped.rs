//@ path: crates/net/src/pool.rs
//@ expect:

//! The net backend's scoped worker pool is allowlisted for raw threads.

pub fn run_workers(xs: &mut [u64]) {
    std::thread::scope(|scope| {
        for chunk in xs.chunks_mut(2) {
            scope.spawn(move || {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            });
        }
    });
}
