//@ path: crates/glm/src/cd.rs
//@ expect:

//! The coordinate loop reads column views in place and reuses the caller's
//! margin buffer — no per-coordinate allocation.

pub fn sweep(cols: &[Vec<(usize, f64)>], w: &mut [f64], margins: &mut [f64]) {
    for (j, col) in cols.iter().enumerate() {
        let mut g = 0.0;
        for &(i, x) in col {
            g += x * margins[i];
        }
        let delta = -g;
        w[j] += delta;
        for &(i, x) in col {
            margins[i] += delta * x;
        }
    }
}
