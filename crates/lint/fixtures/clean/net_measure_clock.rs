//@ path: crates/net/src/measure.rs
//@ expect:

//! `net::measure` is the one non-bench module allowed to read wall
//! clocks: readings feed measurement records, never control flow.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
