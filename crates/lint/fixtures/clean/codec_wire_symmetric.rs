//@ path: crates/collectives/src/wire.rs
//@ expect:

//! A symmetric model-frame pair over the `bytes` prims, shaped like the
//! real `collectives::wire` codec: a shared header helper inlined on both
//! sides, effect-free validation branches, and an adaptive dense↔sparse
//! dispatch whose arms share the hoisted header prefix — the writer's
//! `if` over the encoding choice and the reader's `match` over the kind
//! byte normalize to the same branch node.

use bytes::{Buf, BufMut, Bytes, BytesMut};

const DEMO_MAGIC: u32 = 0x4D4C_5344;

fn put_head(buf: &mut BytesMut, kind: u8, dim: u32) {
    buf.put_u32_le(DEMO_MAGIC);
    buf.put_u8(kind);
    buf.put_u32_le(dim);
}

fn read_head(payload: &mut Bytes) -> Option<(u8, u32)> {
    if payload.len() < 9 {
        return None;
    }
    let magic = payload.get_u32_le();
    if magic != DEMO_MAGIC {
        return None;
    }
    let kind = payload.get_u8();
    let dim = payload.get_u32_le();
    Some((kind, dim))
}

pub fn encode_vals(v: &[f64], sparse: bool) -> Bytes {
    let mut buf = BytesMut::new();
    if sparse {
        put_head(&mut buf, 2, v.len() as u32);
        for (i, &x) in v.iter().enumerate() {
            buf.put_u32_le(i as u32);
            buf.put_f64_le(x);
        }
    } else {
        put_head(&mut buf, 1, v.len() as u32);
        for &x in v {
            buf.put_f64_le(x);
        }
    }
    buf.freeze()
}

pub fn decode_vals(frame: &Bytes) -> Option<Vec<f64>> {
    let mut payload = frame.clone();
    let (kind, dim) = read_head(&mut payload)?;
    let mut out = vec![0.0; dim as usize];
    match kind {
        1 => {
            for x in out.iter_mut() {
                *x = payload.get_f64_le();
            }
        }
        2 => {
            for _ in 0..dim {
                let i = payload.get_u32_le() as usize;
                out[i] = payload.get_f64_le();
            }
        }
        _ => return None,
    }
    Some(out)
}
