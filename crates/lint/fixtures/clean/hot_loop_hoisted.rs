//@ path: crates/linalg/src/demo.rs
//@ expect:

//! The scratch buffer is hoisted; the loop body only reuses it.

pub fn row_norms(rows: &[Vec<f64>], out: &mut Vec<f64>) {
    out.clear();
    let mut scratch = Vec::with_capacity(rows.first().map_or(0, Vec::len));
    for row in rows {
        scratch.clear();
        scratch.extend(row.iter().map(|v| v * v));
        out.push(scratch.iter().sum::<f64>().sqrt());
    }
}
