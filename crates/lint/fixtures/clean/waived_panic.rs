//@ path: crates/data/src/demo.rs
//@ expect:

use std::fmt::Write as _;

pub fn render(items: &[u32]) -> String {
    let mut out = String::new();
    // lint:allow(panic_in_lib): writing to a String cannot fail
    write!(out, "{} items", items.len()).expect("infallible");
    items
        .first()
        .copied()
        .map(|v| v.to_string())
        .unwrap_or_default(); // not a bare unwrap
    out
}

pub fn head(items: &[u32]) -> u32 {
    items.first().copied().unwrap() // lint:allow(panic_in_lib): caller guarantees non-empty input
}
