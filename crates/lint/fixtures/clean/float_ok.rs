//@ path: crates/data/src/demo.rs
//@ expect:

pub fn comparisons(n: usize, x: f64, y: f64, eps: f64) -> bool {
    let int_eq = n == 1;
    let range_sum: usize = (0..10).sum();
    let ordered = x <= 1.0 && y >= 0.5;
    let eps_eq = (x - y).abs() < eps;
    let tuple = (1u32, 2u32);
    let field_eq = tuple.0 == tuple.1;
    int_eq && ordered && eps_eq && field_eq && range_sum > 0
}
