//@ path: crates/glm/src/demo.rs
//@ expect:

//! Sinks confined to #[cfg(test)] code never taint sim-critical APIs.

pub fn stable_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn helper_uses_hash_map_freely() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}
