//@ path: crates/data/src/demo.rs
//@ expect: duplicate_hash_impl

//! A private FNV-1a rewrite outside mlstar-codec.

pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
