//@ path: crates/collectives/src/wire.rs
//@ expect: codec_symmetry

//! Two broken model-frame pairs over the `bytes` prims: `put_update`/
//! `get_update` drift on the loop-guard width (u32 count written, u64
//! count read), and `encode_range`/`decode_range` read the flag byte
//! before the bounds the writer put after them. Both pairs exercise the
//! `_le` spellings of the primitive alphabet.

use bytes::{Buf, BufMut, Bytes, BytesMut};

pub fn put_update(buf: &mut BytesMut, indices: &[u32], values: &[f64]) {
    buf.put_u32_le(indices.len() as u32);
    for &i in indices {
        buf.put_u32_le(i);
    }
    for &x in values {
        buf.put_f64_le(x);
    }
}

pub fn get_update(frame: &Bytes) -> (Vec<u32>, Vec<f64>) {
    let mut payload = frame.clone();
    // Width drift: the count was written as u32.
    let nnz = payload.get_u64_le() as usize;
    let mut indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(payload.get_u32_le());
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(payload.get_f64_le());
    }
    (indices, values)
}

pub fn encode_range(buf: &mut BytesMut, lo: f64, hi: f64, clamped: bool) {
    buf.put_f64_le(lo);
    buf.put_f64_le(hi);
    buf.put_u8(u8::from(clamped));
}

pub fn decode_range(payload: &mut Bytes) -> (f64, f64, bool) {
    // Swapped: reads the flag byte before the bounds.
    let clamped = payload.get_u8() != 0;
    let lo = payload.get_f64_le();
    let hi = payload.get_f64_le();
    (lo, hi, clamped)
}
