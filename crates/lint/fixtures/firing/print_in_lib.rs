//@ path: crates/data/src/demo.rs
//@ expect: print_in_lib

pub fn chatty(progress: f64) {
    println!("progress = {progress}");
    print!("done");
}
