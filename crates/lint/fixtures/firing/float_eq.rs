//@ path: crates/data/src/demo.rs
//@ expect: float_eq

pub fn label_sign(raw: f64, x: f64) -> bool {
    let exact = raw == 1.0;
    let infinite = x == f64::INFINITY;
    let nonzero = x != 0.5;
    exact || infinite || nonzero
}
