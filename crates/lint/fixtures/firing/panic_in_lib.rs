//@ path: crates/data/src/demo.rs
//@ expect: panic_in_lib

pub fn parse(s: &str) -> u32 {
    let n: u32 = s.parse().unwrap();
    let m: u32 = s.trim().parse().expect("must be a number");
    n + m
}
