//@ path: crates/ps/src/demo.rs
//@ expect: std_hash, wall_clock, panic_in_lib, float_eq

use std::collections::HashMap;
use std::time::Instant;

pub fn shard(keys: &[u64]) -> HashMap<u64, usize> {
    let t0 = Instant::now();
    let table: HashMap<u64, usize> = HashMap::new();
    let elapsed = t0.elapsed().as_secs_f64();
    if elapsed == 0.0 {
        keys.first().copied().map(|k| k as usize).unwrap();
    }
    table
}
