//@ path: crates/ps/src/demo.rs
//@ expect: determinism_taint, lock_unwrap, panic_in_lib, float_eq

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

pub fn shard(keys: &[u64], gate: &Mutex<u64>) -> usize {
    let t0 = Instant::now();
    let mut table: HashMap<u64, usize> = HashMap::new();
    for (pos, k) in keys.iter().enumerate() {
        table.insert(*k, pos);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if elapsed == 0.0 {
        return keys.first().map(|k| *k as usize).unwrap();
    }
    let guard = gate.lock().unwrap();
    table.len() + *guard as usize
}
