//@ path: crates/collectives/src/demo.rs
//@ expect: thread_spawn

//! Raw host threads outside the allowlisted modules.

pub fn fan_out(n: u64) -> u64 {
    let handle = std::thread::spawn(move || n + 1);
    handle.join().unwrap_or(n)
}
