//@ path: crates/serve/src/demo_codec.rs
//@ expect: codec_symmetry

//! Two broken writer/reader pairs: `put_header`/`get_header` read two
//! fields in swapped order, and `put_trace`/`get_trace` drift on the
//! loop-guard width (u64 count written, u32 count read). Each pair gets
//! its own side-by-side sequence diff anchored at the writer.

use mlstar_codec::{CodecError, Reader, Writer};

pub fn put_header(w: &mut Writer, epoch: u32, digest: u64) {
    w.put_u32(epoch);
    w.put_u64(digest);
}

pub fn get_header(r: &mut Reader<'_>) -> Result<(u32, u64), CodecError> {
    // Swapped: reads the digest before the epoch.
    let digest = r.u64()?;
    let epoch = r.u32()?;
    Ok((epoch, digest))
}

pub fn put_trace(w: &mut Writer, points: &[f64]) {
    w.put_u64(points.len() as u64);
    for &p in points {
        w.put_f64(p);
    }
}

pub fn get_trace(r: &mut Reader<'_>) -> Result<Vec<f64>, CodecError> {
    // Width drift: the count was written as u64.
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}
