//@ path: crates/glm/src/demo.rs
//@ expect: determinism_taint

//! Multi-hop taint: the sink sits three calls below the public API, and
//! the diagnostic must name the whole chain.

pub fn api_entry(keys: &[u64]) -> usize {
    fold_stats(keys)
}

fn fold_stats(keys: &[u64]) -> usize {
    bucket_keys(keys)
}

fn bucket_keys(keys: &[u64]) -> usize {
    let mut table = std::collections::HashMap::new();
    for k in keys {
        table.insert(*k, ());
    }
    table.len()
}
