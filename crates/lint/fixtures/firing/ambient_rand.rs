//@ path: crates/data/src/demo.rs
//@ expect: ambient_rand

pub fn noise() -> f64 {
    let mut rng = rand::thread_rng();
    let _jitter: f64 = rand::random();
    let _seeded = StdRng::from_entropy();
    rng.gen()
}
