//@ path: crates/data/src/demo.rs
//@ expect: invalid_waiver

// lint:allow(no_such_rule): the rule name is wrong
pub fn a() {}

// lint:allow(panic_in_lib): stale — nothing below panics
pub fn b() {}

pub fn c(s: &str) -> u32 {
    // lint:allow(panic_in_lib):
    s.len() as u32
}
