//@ path: crates/core/src/demo.rs
//@ expect: determinism_taint

//! Wall-clock sink one call below a sim-critical public API.

use std::time::Instant;

pub fn paced_step(n: u64) -> f64 {
    step_seconds(n)
}

fn step_seconds(_n: u64) -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
