//@ path: crates/net/src/demo.rs
//@ expect: thread_spawn

//! Raw host threads in the net crate outside the scoped pool module.

pub fn fan_out(n: u64) -> u64 {
    let handle = std::thread::spawn(move || n + 1);
    handle.join().unwrap_or(n)
}
