//@ path: crates/glm/src/cd.rs
//@ expect: hot_loop_alloc

//! Per-iteration allocation inside a coordinate-descent sweep: collecting
//! a column's entries into a fresh Vec on every coordinate visit.

pub fn sweep(cols: &[Vec<(usize, f64)>], w: &mut [f64], margins: &mut [f64]) {
    for (j, col) in cols.iter().enumerate() {
        let entries: Vec<(usize, f64)> = col.iter().copied().collect();
        let mut g = 0.0;
        for &(i, x) in &entries {
            g += x * margins[i];
        }
        w[j] -= g;
    }
}
