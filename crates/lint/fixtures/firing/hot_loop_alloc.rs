//@ path: crates/linalg/src/demo.rs
//@ expect: hot_loop_alloc

//! Per-iteration allocation in a hot-path module.

pub fn row_norms(rows: &[Vec<f64>]) -> Vec<f64> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let copy = row.to_vec();
        out.push(copy.iter().map(|v| v * v).sum::<f64>().sqrt());
    }
    out
}
