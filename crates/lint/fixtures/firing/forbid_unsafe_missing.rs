//@ path: crates/glm/src/lib.rs
//@ expect: forbid_unsafe_missing

//! A crate root that forgot its `#![forbid(unsafe_code)]` declaration.

pub fn f() -> u32 {
    41 + 1
}
