//@ path: crates/cluster/src/demo.rs
//@ expect: std_hash

use std::collections::{HashMap, HashSet};

pub fn routing_table() -> HashMap<u32, Vec<u32>> {
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(1);
    HashMap::new()
}
