//@ path: crates/net/src/demo.rs
//@ expect: determinism_taint

//! Wall-clock reads in the net crate outside `net::measure`.

use std::time::Instant;

pub fn batch_seconds() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
