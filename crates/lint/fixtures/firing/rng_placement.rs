//@ path: crates/net/src/worker.rs
//@ expect: rng_placement

//! Worker-side sampling, three calls below the worker entry point. The
//! orchestrator-side-RNG invariant says workers receive explicit row
//! indices and never sample; the diagnostic must carry the whole chain.

use mlstar_cluster::rng::SeedStream;

pub(crate) fn run_worker(seed: u64, rows: usize) -> usize {
    refill_batch(seed, rows)
}

fn refill_batch(seed: u64, rows: usize) -> usize {
    draw_row(seed, rows)
}

fn draw_row(seed: u64, rows: usize) -> usize {
    let stream = SeedStream::new(seed).child("row");
    (stream.seed() as usize) % rows.max(1)
}
