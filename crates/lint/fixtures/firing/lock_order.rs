//@ path: crates/ps/src/demo.rs
//@ expect: lock_order

//! Two functions acquire the same pair of locks in opposite orders.

use std::sync::Mutex;

pub struct Shards {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn credit(s: &Shards) -> u64 {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    match (a, b) {
        (Ok(x), Ok(y)) => *x + *y,
        _ => 0,
    }
}

pub fn audit(s: &Shards) -> u64 {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    match (a, b) {
        (Ok(x), Ok(y)) => *x + *y,
        _ => 0,
    }
}
