//@ path: crates/serve/src/demo.rs
//@ expect: lock_unwrap

//! `.lock().unwrap()` in library code hides poisoning behind a panic.

use std::sync::Mutex;

pub fn bump(counter: &Mutex<u64>) -> u64 {
    let mut guard = counter.lock().unwrap();
    *guard += 1;
    *guard
}
