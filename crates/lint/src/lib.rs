#![forbid(unsafe_code)]
//! mlstar-lint: the workspace's own static analyzer.
//!
//! The reproduction's headline claim is *bit-reproducible* distributed GLM
//! training on a simulated cluster. That property is easy to break with a
//! single `HashMap` iteration or stray `Instant::now()`, and no rustc or
//! clippy lint polices it. This crate does, with zero dependencies beyond
//! std (the build environment has no registry access).
//!
//! v2 grew the line scanner into a lightweight item-level analyzer: a
//! tokenizer-backed parser ([`parse`]) extracts `fn`/`impl`/`mod` items
//! per file, [`callgraph`] resolves intra-workspace calls by name
//! (module-path heuristic, no type inference), and [`taint`] walks the
//! graph so a nondeterminism sink two calls deep from a public API is
//! reported with its full call path.
//!
//! Rules (see [`rules::RuleId`]):
//!
//! | rule | enforced where |
//! |------|----------------|
//! | `determinism_taint` | sim-critical crates + anything their public APIs reach (path-carrying) |
//! | `ambient_rand` | everywhere except crates/bench |
//! | `thread_spawn` | lib/bin code outside the allowlisted host-parallelism modules |
//! | `lock_unwrap` | non-test library code |
//! | `lock_order` | functions holding two locks, workspace-wide |
//! | `hot_loop_alloc` | loop bodies in designated hot-path modules |
//! | `duplicate_hash_impl` | any crate except mlstar-codec |
//! | `forbid_unsafe_missing` | every crate root |
//! | `panic_in_lib` | non-test library code (waivable) |
//! | `float_eq` | non-test lib/bin code (literal/constant comparisons) |
//! | `print_in_lib` | library code outside crates/bench |
//! | `invalid_waiver` | waiver comments themselves |
//! | `codec_symmetry` | paired encode/decode fns in codec, serve, core::checkpoint, net::protocol, collectives::wire |
//! | `rng_placement` | functions reachable from worker-side entry points |
//!
//! Waive a finding with `// lint:allow(<rule>): <reason>` on the same
//! line or the line above. Stale or malformed waivers are violations, so
//! the waiver inventory stays honest.
//!
//! Run it as `cargo lint` (alias for `cargo run -p mlstar-lint --`; add
//! `--json` for machine-readable output with per-rule timings); the
//! integration test in `tests/workspace_clean.rs` runs the same scan on
//! every `cargo test`, which is what wires the analyzer into the tier-1
//! gate.

pub mod callgraph;
pub mod context;
pub mod dataflow;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod taint;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use callgraph::CallGraph;
pub use context::{classify, FileContext, FileRole};
pub use parse::FnItem;
pub use rules::{RuleId, Violation};

/// One analyzed source file: classification, scanned lines, parsed
/// function items, and its waiver table.
#[derive(Debug)]
pub struct FileUnit {
    pub ctx: FileContext,
    pub lines: Vec<scanner::Line>,
    pub items: Vec<parse::FnItem>,
    pub(crate) waivers: Vec<rules::Waiver>,
}

/// Wall-time spent in one analysis phase or rule pass (reporting only —
/// timings never influence diagnostics).
#[derive(Debug, Clone)]
pub struct PassTiming {
    pub name: &'static str,
    pub micros: u128,
}

/// Result of scanning a whole workspace.
#[derive(Debug)]
pub struct ScanReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    /// Functions extracted by the item parser.
    pub functions: usize,
    /// Resolved call-graph edges.
    pub edges: usize,
    /// Per-phase / per-rule wall time.
    pub timings: Vec<PassTiming>,
}

fn timed<T>(name: &'static str, timings: &mut Vec<PassTiming>, f: impl FnOnce() -> T) -> T {
    // lint:allow(determinism_taint): reporting-only pass timings, never part of any diagnostic
    let t0 = std::time::Instant::now();
    let out = f();
    timings.push(PassTiming {
        name,
        micros: t0.elapsed().as_micros(),
    });
    out
}

/// Runs the full analysis (scan → parse → call graph → rule passes) over
/// an in-memory file set. This is the core the single-file [`check_file`]
/// helper and the workspace scan both share.
pub fn analyze_sources(sources: Vec<(FileContext, String)>) -> ScanReport {
    let mut timings: Vec<PassTiming> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();

    let mut units: Vec<FileUnit> = timed("parse", &mut timings, || {
        sources
            .into_iter()
            .map(|(ctx, source)| {
                let lines = scanner::scan(&source);
                let (waivers, mut malformed) = rules::collect_waivers(&ctx, &lines);
                violations.append(&mut malformed);
                let items = parse::parse_file(&ctx, &lines);
                FileUnit {
                    ctx,
                    lines,
                    items,
                    waivers,
                }
            })
            .collect()
    });
    let files_scanned = units.len();
    let functions = units.iter().map(|u| u.items.len()).sum();

    let graph = timed("callgraph", &mut timings, || CallGraph::build(&units));
    let edges = graph.edge_count;

    timed("determinism_taint", &mut timings, || {
        taint::pass_determinism_taint(&mut units, &graph, &mut violations)
    });
    timed("ambient_rand", &mut timings, || {
        rules::pass_ambient_rand(&mut units, &mut violations)
    });
    timed("thread_spawn", &mut timings, || {
        rules::pass_thread_spawn(&mut units, &mut violations)
    });
    timed("lock_unwrap", &mut timings, || {
        rules::pass_lock_unwrap(&mut units, &mut violations)
    });
    timed("lock_order", &mut timings, || {
        rules::pass_lock_order(&mut units, &mut violations)
    });
    timed("hot_loop_alloc", &mut timings, || {
        rules::pass_hot_loop_alloc(&mut units, &mut violations)
    });
    timed("duplicate_hash_impl", &mut timings, || {
        rules::pass_duplicate_hash_impl(&mut units, &mut violations)
    });
    timed("forbid_unsafe_missing", &mut timings, || {
        rules::pass_forbid_unsafe(&mut units, &mut violations)
    });
    timed("panic_in_lib", &mut timings, || {
        rules::pass_panic_in_lib(&mut units, &mut violations)
    });
    timed("float_eq", &mut timings, || {
        rules::pass_float_eq(&mut units, &mut violations)
    });
    timed("print_in_lib", &mut timings, || {
        rules::pass_print_in_lib(&mut units, &mut violations)
    });
    timed("codec_symmetry", &mut timings, || {
        dataflow::pass_codec_symmetry(&mut units, &mut violations)
    });
    timed("rng_placement", &mut timings, || {
        taint::pass_rng_placement(&mut units, &graph, &mut violations)
    });

    // Every waiver must have suppressed something.
    for unit in &units {
        for w in &unit.waivers {
            if !w.used {
                violations.push(Violation {
                    file: unit.ctx.rel_path.clone(),
                    line: w.comment_line,
                    rule: RuleId::InvalidWaiver,
                    message: format!(
                        "waiver for `{}` suppresses nothing; remove the stale comment",
                        w.rule.name()
                    ),
                    path: Vec::new(),
                });
            }
        }
    }

    // Fully deterministic emit order: file → line → rule → message. The
    // message tiebreaker matters when one pass emits several diagnostics
    // on the same line (e.g. two asymmetric pairs sharing a writer).
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    ScanReport {
        violations,
        files_scanned,
        functions,
        edges,
        timings,
    }
}

/// Runs every applicable rule over one file's source text. Call paths are
/// resolved within the file only — the workspace scan sees cross-file
/// chains too.
pub fn check_file(ctx: &FileContext, source: &str) -> Vec<Violation> {
    analyze_sources(vec![(ctx.clone(), source.to_string())]).violations
}

/// Scans every policed `.rs` file under `root` and returns all violations,
/// sorted by file then line.
pub fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    let files = walk::rust_sources(root)?;
    let mut sources = Vec::new();
    for rel in &files {
        let Some(ctx) = classify(rel) else {
            continue;
        };
        let source = fs::read_to_string(root.join(rel))?;
        sources.push((ctx, source));
    }
    Ok(analyze_sources(sources))
}
