#![forbid(unsafe_code)]
//! mlstar-lint: the workspace's own static analyzer.
//!
//! The reproduction's headline claim is *bit-reproducible* distributed GLM
//! training on a simulated cluster. That property is easy to break with a
//! single `HashMap` iteration or stray `Instant::now()`, and no rustc or
//! clippy lint polices it. This crate does, with zero dependencies beyond
//! std (the build environment has no registry access), via a
//! comment/string-aware scanner rather than a full parser.
//!
//! Rules (see [`rules::RuleId`]):
//!
//! | rule | enforced where |
//! |------|----------------|
//! | `std_hash` | lib/bin code of sim-critical crates (cluster, core, collectives, ps, glm) |
//! | `wall_clock` | everywhere except crates/bench |
//! | `ambient_rand` | everywhere except crates/bench |
//! | `forbid_unsafe_missing` | every crate root |
//! | `panic_in_lib` | non-test library code (waivable) |
//! | `float_eq` | non-test lib/bin code (literal/constant comparisons) |
//! | `print_in_lib` | library code outside crates/bench |
//! | `invalid_waiver` | waiver comments themselves |
//!
//! Waive a finding with `// lint:allow(<rule>): <reason>` on the same
//! line or the line above. Stale or malformed waivers are violations, so
//! the waiver inventory stays honest.
//!
//! Run it as `cargo run -p mlstar-lint` (add `--json` for machine-readable
//! output); the integration test in `tests/workspace_clean.rs` runs the
//! same scan on every `cargo test`, which is what wires the analyzer into
//! the tier-1 gate.

pub mod context;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use context::{classify, FileContext, FileRole};
pub use rules::{check_file, RuleId, Violation};

/// Result of scanning a whole workspace.
#[derive(Debug)]
pub struct ScanReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

/// Scans every policed `.rs` file under `root` and returns all violations,
/// sorted by file then line.
pub fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    let files = walk::rust_sources(root)?;
    let mut violations = Vec::new();
    let mut files_scanned = 0;
    for rel in &files {
        let Some(ctx) = classify(rel) else {
            continue;
        };
        let source = fs::read_to_string(root.join(rel))?;
        files_scanned += 1;
        violations.extend(check_file(&ctx, &source));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(ScanReport {
        violations,
        files_scanned,
    })
}
