//! Determinism taint: connects line-level nondeterminism *sinks* to the
//! sim-critical public API surface through the workspace call graph, so a
//! diagnostic names the whole chain —
//!
//! ```text
//! `serve::score_shard` → `data::sample_rows` → `HashMap` [nondeterministic iteration order]
//! ```
//!
//! Sink detection stays line-level (robust against anything the parser
//! cannot see); the call graph adds the path and extends coverage to
//! non-sim-critical code that sim-critical public APIs reach.
//!
//! Sinks and where they fire:
//!
//! * default-hasher `HashMap`/`HashSet` — lib/bin code of sim-critical
//!   crates always; any other non-bench crate when the enclosing function
//!   is reachable from a sim-critical public API
//! * `Instant::now` / `SystemTime::now` — everywhere except crates/bench
//!   and `net::measure`, the net backend's single measurement-only clock
//! * `env::var` / `env::vars` / `env::var_os` — lib/bin code of
//!   sim-critical crates (ambient process state)
//! * `thread::current` — lib/bin code of sim-critical crates (OS thread
//!   identity)

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::context::{FileContext, FileRole};
use crate::rules::{self, RuleId, Violation};
use crate::scanner;
use crate::FileUnit;

/// Modules allowed to read wall clocks outside the timing crate: the net
/// backend funnels every `Instant::now` through `net::measure`, where
/// readings feed measurement records only — never control flow, RNG
/// seeding, or model math.
const CLOCK_ALLOWLIST: &[(&str, &str)] = &[("net", "measure")];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    Hash,
    Clock,
    Env,
    ThreadId,
}

struct Sink {
    token: &'static str,
    kind: SinkKind,
    /// Short bracketed tag appended to the path.
    tag: &'static str,
    /// Remedy appended to the message.
    remedy: &'static str,
}

const SINKS: &[Sink] = &[
    Sink {
        token: "HashMap",
        kind: SinkKind::Hash,
        tag: "nondeterministic iteration order",
        remedy: "use BTreeMap/BTreeSet",
    },
    Sink {
        token: "HashSet",
        kind: SinkKind::Hash,
        tag: "nondeterministic iteration order",
        remedy: "use BTreeMap/BTreeSet",
    },
    Sink {
        token: "Instant::now",
        kind: SinkKind::Clock,
        tag: "wall clock",
        remedy: "simulated time must come from the virtual clock",
    },
    Sink {
        token: "SystemTime::now",
        kind: SinkKind::Clock,
        tag: "wall clock",
        remedy: "simulated time must come from the virtual clock",
    },
    Sink {
        token: "env::var",
        kind: SinkKind::Env,
        tag: "ambient environment",
        remedy: "thread configuration through TrainConfig instead of process state",
    },
    Sink {
        token: "thread::current",
        kind: SinkKind::ThreadId,
        tag: "OS thread identity",
        remedy: "identify work by shard index, not by thread",
    },
];

/// Runs the determinism-taint rule over every unit.
pub(crate) fn pass_determinism_taint(
    units: &mut [FileUnit],
    graph: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let ctx_by_file: BTreeMap<&str, &FileContext> = units
        .iter()
        .map(|u| (u.ctx.rel_path.as_str(), &u.ctx))
        .collect();

    // Roots: public functions in sim-critical library code. Everything the
    // simulation can invoke through a crate API starts here.
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            let Some(ctx) = ctx_by_file.get(n.file.as_str()) else {
                return false;
            };
            ctx.is_sim_critical() && ctx.role == FileRole::Lib && n.item.is_pub && !n.item.in_test
        })
        .map(|(i, _)| i)
        .collect();
    let reach = graph.reach_from(&roots);

    for unit in units.iter_mut() {
        if unit.ctx.is_timing_crate() {
            continue;
        }
        let rel_path = unit.ctx.rel_path.clone();
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            let code = unit.lines[idx].code.clone();
            for sink in SINKS {
                let hit = match sink.kind {
                    SinkKind::Hash => scanner::contains_word(&code, sink.token),
                    _ => code.contains(sink.token),
                };
                if !hit {
                    continue;
                }
                // Call path from the nearest sim-critical public API to
                // the function enclosing the sink, when one exists.
                let chain: Vec<String> = graph
                    .fn_at(&rel_path, lineno)
                    .map(|f| graph.path_to(&reach, f))
                    .unwrap_or_default()
                    .iter()
                    .map(|&i| graph.nodes[i].item.display())
                    .collect();

                let lib_or_bin = matches!(unit.ctx.role, FileRole::Lib | FileRole::Bin);
                let applies = match sink.kind {
                    // Hash sinks: sim-critical lib/bin code always; other
                    // crates only when sim-critical APIs reach them.
                    SinkKind::Hash => {
                        lib_or_bin && (unit.ctx.is_sim_critical() || !chain.is_empty())
                    }
                    // Wall clock: banned everywhere outside crates/bench
                    // and the net backend's measurement module.
                    SinkKind::Clock => {
                        let module = rules::file_module(&unit.ctx);
                        !CLOCK_ALLOWLIST
                            .iter()
                            .any(|(c, m)| *c == unit.ctx.crate_name && *m == module)
                    }
                    SinkKind::Env | SinkKind::ThreadId => lib_or_bin && unit.ctx.is_sim_critical(),
                };
                if !applies {
                    continue;
                }

                let (message, mut path) = if chain.is_empty() {
                    (
                        format!(
                            "`{}` {} [{}]: {}",
                            sink.token,
                            locality(sink.kind, &unit.ctx),
                            sink.tag,
                            sink.remedy
                        ),
                        Vec::new(),
                    )
                } else {
                    let rendered: Vec<String> = chain.iter().map(|d| format!("`{d}`")).collect();
                    (
                        format!(
                            "determinism taint: {} → `{}` [{}]; {}",
                            rendered.join(" → "),
                            sink.token,
                            sink.tag,
                            sink.remedy
                        ),
                        chain.clone(),
                    )
                };
                if !path.is_empty() {
                    path.push(sink.token.to_string());
                }
                rules::push(unit, out, lineno, RuleId::DeterminismTaint, message, path);
            }
        }
    }
}

/// RNG constructors/streams that must never run worker-side. `ChaCha`
/// is matched as a substring so `ChaCha12Rng`, `ChaCha20Rng`, … all hit.
const RNG_SINKS: &[(&str, bool)] = &[("SeedStream", true), ("ChaCha", false), ("StdRng", true)];

/// Runs the rng_placement rule: any RNG sink reachable from a worker-side
/// entry point (public fns of `net::worker`, or a `run_ops` backend impl)
/// fires with the full call chain. This is the static form of the
/// orchestrator-side-RNG invariant: workers receive explicit row indices
/// and never sample, so sim and net backends stay bit-identical.
pub(crate) fn pass_rng_placement(
    units: &mut [FileUnit],
    graph: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let ctx_by_file: BTreeMap<&str, &FileContext> = units
        .iter()
        .map(|u| (u.ctx.rel_path.as_str(), &u.ctx))
        .collect();

    // Worker-side entry points: everything a remote worker process or an
    // op-dispatch backend can execute.
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            if n.item.in_test {
                return false;
            }
            let Some(ctx) = ctx_by_file.get(n.file.as_str()) else {
                return false;
            };
            let worker_entry = ctx.crate_name == "net"
                && n.item.modules.first().map(String::as_str) == Some("worker")
                && n.item.is_pub;
            let op_handler = n.item.is_method() && n.item.bare_name() == "run_ops";
            worker_entry || op_handler
        })
        .map(|(i, _)| i)
        .collect();
    let reach = graph.reach_from(&roots);

    for unit in units.iter_mut() {
        if unit.ctx.is_timing_crate() || !matches!(unit.ctx.role, FileRole::Lib | FileRole::Bin) {
            continue;
        }
        let rel_path = unit.ctx.rel_path.clone();
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            let code = unit.lines[idx].code.clone();
            for &(token, word) in RNG_SINKS {
                let hit = if word {
                    scanner::contains_word(&code, token)
                } else {
                    code.contains(token)
                };
                if !hit {
                    continue;
                }
                // Only sinks whose enclosing function a worker-side entry
                // point reaches matter; orchestrator-side sampling is the
                // designed home for all of these.
                let chain: Vec<String> = graph
                    .fn_at(&rel_path, lineno)
                    .map(|f| graph.path_to(&reach, f))
                    .unwrap_or_default()
                    .iter()
                    .map(|&i| graph.nodes[i].item.display())
                    .collect();
                if chain.is_empty() {
                    continue;
                }
                let rendered: Vec<String> = chain.iter().map(|d| format!("`{d}`")).collect();
                let mut path = chain;
                path.push(token.to_string());
                let message = format!(
                    "worker-side RNG: {} → `{token}` [sampling off the orchestrator]; \
                     sample on the orchestrator and ship explicit indices to workers",
                    rendered.join(" → ")
                );
                rules::push(unit, out, lineno, RuleId::RngPlacement, message, path);
            }
        }
    }
}

/// The "where/why" clause for pathless sink diagnostics.
fn locality(kind: SinkKind, ctx: &FileContext) -> String {
    match kind {
        SinkKind::Hash => format!(
            "in sim-critical crate `{}`: iteration order is seeded per-process",
            ctx.crate_name
        ),
        SinkKind::Clock => "outside crates/bench and net::measure".to_string(),
        SinkKind::Env | SinkKind::ThreadId => {
            format!("in sim-critical crate `{}`", ctx.crate_name)
        }
    }
}
