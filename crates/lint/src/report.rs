//! Diagnostic rendering: human-readable `file:line: rule: message` lines
//! and a hand-rolled JSON mode (std-only — no serde in the analyzer).

use crate::rules::Violation;

/// Renders one violation as `file:line: [rule] message`.
pub fn human_line(v: &Violation) -> String {
    format!("{}:{}: [{}] {}", v.file, v.line, v.rule.name(), v.message)
}

/// Renders the full report as a JSON object:
/// `{"files_scanned": N, "violations": [{"file", "line", "rule", "message"}…]}`.
pub fn json_report(violations: &[Violation], files_scanned: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"violation_count\": {},\n", violations.len()));
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": {}, ", json_string(&v.file)));
        out.push_str(&format!("\"line\": {}, ", v.line));
        out.push_str(&format!("\"rule\": {}, ", json_string(v.rule.name())));
        out.push_str(&format!("\"message\": {}", json_string(&v.message)));
        out.push('}');
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn sample() -> Violation {
        Violation {
            file: "crates/x/src/a.rs".to_string(),
            line: 7,
            rule: RuleId::StdHash,
            message: "say \"no\" to\nHashMap".to_string(),
        }
    }

    #[test]
    fn human_line_format() {
        assert!(human_line(&sample()).starts_with("crates/x/src/a.rs:7: [std_hash]"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let json = json_report(&[sample()], 3);
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"violation_count\": 1"));
        assert!(!json.contains('\u{7}'));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let json = json_report(&[], 10);
        assert!(json.contains("\"violations\": []"));
    }
}
