//! Diagnostic rendering: human-readable `file:line: rule: message` lines
//! and a hand-rolled JSON mode (std-only — no serde in the analyzer).

use crate::rules::Violation;
use crate::ScanReport;

/// Renders one violation as `file:line: [rule] message`. Path-carrying
/// rules embed the call chain in the message, so this line is the full
/// story for humans and CI logs alike.
pub fn human_line(v: &Violation) -> String {
    format!("{}:{}: [{}] {}", v.file, v.line, v.rule.name(), v.message)
}

/// Renders the full report as a JSON object:
/// `{"files_scanned", "functions", "edges", "violation_count",
///   "violations": [{"file", "line", "rule", "message", "path"}…],
///   "timings_us": {"<pass>": N, …}}`.
pub fn json_report(scan: &ScanReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", scan.files_scanned));
    out.push_str(&format!("  \"functions\": {},\n", scan.functions));
    out.push_str(&format!("  \"edges\": {},\n", scan.edges));
    out.push_str(&format!(
        "  \"violation_count\": {},\n",
        scan.violations.len()
    ));
    out.push_str("  \"violations\": [");
    for (i, v) in scan.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": {}, ", json_string(&v.file)));
        out.push_str(&format!("\"line\": {}, ", v.line));
        out.push_str(&format!("\"rule\": {}, ", json_string(v.rule.name())));
        out.push_str(&format!("\"message\": {}, ", json_string(&v.message)));
        let path: Vec<String> = v.path.iter().map(|p| json_string(p)).collect();
        out.push_str(&format!("\"path\": [{}]", path.join(", ")));
        out.push('}');
    }
    if !scan.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    let total_us: u128 = scan.timings.iter().map(|t| t.micros).sum();
    out.push_str(&format!("  \"total_us\": {total_us},\n"));
    out.push_str("  \"timings_us\": {");
    for (i, t) in scan.timings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", json_string(t.name), t.micros));
    }
    if !scan.timings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;
    use crate::PassTiming;

    fn sample() -> Violation {
        Violation {
            file: "crates/x/src/a.rs".to_string(),
            line: 7,
            rule: RuleId::DeterminismTaint,
            message: "say \"no\" to\nHashMap".to_string(),
            path: vec!["glm::train".to_string(), "HashMap".to_string()],
        }
    }

    fn report_with(violations: Vec<Violation>) -> ScanReport {
        ScanReport {
            violations,
            files_scanned: 3,
            functions: 12,
            edges: 5,
            timings: vec![PassTiming {
                name: "callgraph",
                micros: 42,
            }],
        }
    }

    #[test]
    fn human_line_format() {
        assert!(human_line(&sample()).starts_with("crates/x/src/a.rs:7: [determinism_taint]"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let json = json_report(&report_with(vec![sample()]));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"violation_count\": 1"));
        assert!(json.contains("\"path\": [\"glm::train\", \"HashMap\"]"));
        assert!(json.contains("\"functions\": 12"));
        assert!(json.contains("\"callgraph\": 42"));
        assert!(json.contains("\"total_us\": 42"));
        assert!(!json.contains('\u{7}'));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let mut r = report_with(Vec::new());
        r.timings.clear();
        let json = json_report(&r);
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"timings_us\": {}"));
    }
}
