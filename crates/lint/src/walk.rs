//! Workspace traversal: finds every `.rs` file the analyzer polices.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS metadata,
/// vendored dependency stubs, lint fixtures (which violate on purpose),
/// and benchmark result dumps.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "vendor",
    "fixtures",
    "bench_results",
    ".github",
    "node_modules",
];

/// Recursively collects workspace-relative paths (forward slashes) of all
/// `.rs` files under `root`, sorted for deterministic output.
pub fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut found = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let abs = root.join(&rel_dir);
        let entries = fs::read_dir(&abs)?;
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(name)
            } else {
                rel_dir.join(name)
            };
            let ftype = entry.file_type()?;
            if ftype.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(rel);
                }
            } else if ftype.is_file() && name.ends_with(".rs") {
                let unix: String = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                found.push(unix);
            }
        }
    }
    found.sort();
    Ok(found)
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`. Returns `None` when no workspace root is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walking_this_workspace_finds_our_own_sources_and_skips_vendor() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("the lint crate lives inside the workspace");
        let files = rust_sources(&root).expect("workspace is readable");
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(files.iter().all(|f| !f.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.contains("/fixtures/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "output is deterministic");
    }
}
