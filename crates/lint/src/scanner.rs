//! A small comment/string-aware source scanner.
//!
//! The analyzer never parses Rust properly — it classifies every character
//! of a source file as *code*, *comment*, or *literal content*, then hands
//! the rules a per-line view where comment text and the inside of
//! string/char literals are blanked out of the code channel (and comment
//! text is preserved separately for waiver parsing). On top of that it
//! tracks `#[cfg(test)]` / `#[test]` / `mod tests` brace regions so rules
//! can skip test code.
//!
//! Handled syntax: line comments (`//`, `///`, `//!`), nested block
//! comments (`/* /* */ */`), string literals with escapes, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth), byte strings, char literals with
//! escapes, and the lifetime-vs-char-literal ambiguity (`'a` vs `'a'`).

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code channel: source text with comments and the interior
    /// of string/char literals replaced by spaces (delimiters kept), so
    /// byte offsets still line up with the original.
    pub code: String,
    /// The line's comment text (contents of `//…` and `/*…*/` segments),
    /// concatenated.
    pub comment: String,
    /// Whether the line sits inside a test region (`#[cfg(test)]` item,
    /// `#[test]` function, or `mod tests { … }`).
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    ByteStr,
    Char,
}

/// Scans `source` into per-line code/comment channels with test-region
/// flags.
pub fn scan(source: &str) -> Vec<Line> {
    let channels = split_channels(source);
    mark_test_regions(channels)
}

/// First pass: split each line into code and comment channels.
fn split_channels(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw in source.split('\n') {
        let raw = raw.strip_suffix('\r').unwrap_or(raw);
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        // A line comment never survives past its line.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        code.push_str("  ");
                        i += 2;
                        // Doc-comment sigils are comment punctuation, not text.
                        while chars.get(i) == Some(&'/') || chars.get(i) == Some(&'!') {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        state = State::RawStr(hashes);
                        for _ in 0..(2 + hashes as usize) {
                            code.push(' ');
                        }
                        code.pop();
                        code.push('"');
                        i += 2 + hashes as usize;
                    }
                    'b' if next == Some('"') => {
                        state = State::ByteStr;
                        code.push_str("b\"");
                        i += 2;
                    }
                    '\'' if is_char_literal_start(&chars, i) => {
                        state = State::Char;
                        code.push('\'');
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                        code.push_str("  ");
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str | State::ByteStr => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Code;
                        code.push('"');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        state = State::Code;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                    }
                    '\'' => {
                        state = State::Code;
                        code.push('\'');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
            }
        }
        // Multiline string/char states persist; escapes that consumed the
        // (nonexistent) char past end-of-line are harmless.
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    lines
}

/// `r"`, `r#"`, `r##"` … at position `i` (where `chars[i] == 'r'`), not part
/// of an identifier like `for` or `r2`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime: `'a'` vs `'a`. A quote
/// starts a char literal when the quoted content is followed by a closing
/// quote (`'x'`, `'\n'`), or when it cannot be a lifetime (`'1'`).
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(&c) if is_ident_char(c) => chars.get(i + 2) == Some(&'\''),
        Some(_) => true, // e.g. '(' — lifetimes are identifiers only
        None => false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Second pass: flag lines inside `#[cfg(test)]` / `#[test]` / `mod tests`
/// brace regions. Works on the code channel only, so attributes or
/// `mod tests` text inside strings and comments cannot start a region.
fn mark_test_regions(mut lines: Vec<Line>) -> Vec<Line> {
    let mut depth: i64 = 0;
    // Brace depths at which a test region opened; a line is test code when
    // this stack is non-empty.
    let mut region_stack: Vec<i64> = Vec::new();
    // Set when a test-ish attribute or `mod tests` header was seen and we
    // are waiting for its opening brace.
    let mut pending = false;
    // Collects attribute text across lines while inside `#[ … ]`.
    let mut attr: Option<String> = None;
    let mut attr_depth: i64 = 0;

    for line in &mut lines {
        line.in_test = !region_stack.is_empty();
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if let Some(text) = attr.as_mut() {
                text.push(c);
                match c {
                    '[' => attr_depth += 1,
                    ']' => {
                        attr_depth -= 1;
                        if attr_depth == 0 {
                            if is_test_attr(text) {
                                pending = true;
                                line.in_test = true;
                            }
                            attr = None;
                        }
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            match c {
                '#' if chars.get(i + 1) == Some(&'[') || starts_with_inner_attr(&chars, i) => {
                    // `#![…]` inner attributes never gate items; skip them
                    // so `#![forbid(unsafe_code)]` cannot trip attr logic.
                    if chars.get(i + 1) == Some(&'!') {
                        i += 1;
                        continue;
                    }
                    attr = Some(String::new());
                    attr_depth = 0;
                    i += 1;
                    continue;
                }
                '{' => {
                    depth += 1;
                    if pending {
                        region_stack.push(depth);
                        pending = false;
                        line.in_test = true;
                    }
                }
                '}' => {
                    if let Some(&open) = region_stack.last() {
                        if depth == open {
                            region_stack.pop();
                        }
                    }
                    depth -= 1;
                }
                ';' => {
                    // `#[cfg(test)] mod tests;` — the region lives in
                    // another file; nothing to mark here.
                    pending = false;
                }
                'm' if word_at(&chars, i, "mod") => {
                    if let Some(name) = ident_after(&chars, i + 3) {
                        if name == "tests" || name.ends_with("_tests") || name.ends_with("_test") {
                            pending = true;
                        }
                    }
                    i += 3;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
    }
    lines
}

fn starts_with_inner_attr(chars: &[char], i: usize) -> bool {
    chars.get(i + 1) == Some(&'!') && chars.get(i + 2) == Some(&'[')
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[cfg_attr(test, …)]`
/// — any attribute whose text contains `test` as a standalone word.
fn is_test_attr(text: &str) -> bool {
    let trimmed = text.trim_start_matches('[');
    let head: String = trimmed.chars().take_while(|c| is_ident_char(*c)).collect();
    if head == "test" {
        return true;
    }
    if head != "cfg" && head != "cfg_attr" {
        return false;
    }
    contains_word(text, "test")
}

/// Whether `needle` appears in `haystack` delimited by non-identifier
/// characters.
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    find_word(haystack, needle, 0).is_some()
}

/// Finds the next word-delimited occurrence of `needle` at or after byte
/// offset `from`.
pub fn find_word(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut start = from;
    while let Some(pos) = haystack.get(start..).and_then(|h| h.find(needle)) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn word_at(chars: &[char], i: usize, word: &str) -> bool {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let w: Vec<char> = word.chars().collect();
    if chars.len() < i + w.len() || chars[i..i + w.len()] != w[..] {
        return false;
    }
    match chars.get(i + w.len()) {
        Some(&c) => !is_ident_char(c),
        None => true,
    }
}

fn ident_after(chars: &[char], mut i: usize) -> Option<String> {
    while chars.get(i).is_some_and(|c| c.is_whitespace()) {
        i += 1;
    }
    let mut name = String::new();
    while chars.get(i).is_some_and(|c| is_ident_char(*c)) {
        name.push(chars[i]);
        i += 1;
    }
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_blanked_but_kept_in_comment_channel() {
        let lines = scan("let x = 1; // HashMap here\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(lines[0].comment.contains("HashMap here"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let lines = scan("/// uses .unwrap() freely\nfn f() {}\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments_blank_until_fully_closed() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        let code = &codes(src)[0];
        assert!(code.contains('a') && code.contains('b'));
        assert!(!code.contains("outer") && !code.contains("inner") && !code.contains("still"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let got = codes("x /* start\nmiddle HashMap\nend */ y\n");
        assert!(got[0].contains('x'));
        assert!(!got[1].contains("HashMap"));
        assert!(got[2].contains('y'));
    }

    #[test]
    fn string_contents_are_blanked_delimiters_kept() {
        let code = &codes("let s = \"Instant::now() inside\";\n")[0];
        assert!(!code.contains("Instant::now"));
        assert!(code.contains('"'));
        assert!(code.ends_with(';'));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let code = &codes(r#"let s = "a\"b HashMap"; let t = 1;"#)[0];
        assert!(!code.contains("HashMap"));
        assert!(code.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let code = &codes(r##"let s = r#"thread_rng() "quoted" more"#; done();"##)[0];
        assert!(!code.contains("thread_rng"));
        assert!(code.contains("done();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let code = &codes("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; g(x) }\n")[0];
        // The lifetime must not open a char literal that eats the rest.
        assert!(code.contains("g(x)"));
        assert!(!code.contains("'x'") || code.contains("' '"));
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        let code = &codes("let q = '\"'; let h = HashMap::new();\n")[0];
        assert!(code.contains("HashMap"));
    }

    #[test]
    fn cfg_test_region_is_tracked_through_braces() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap() }\n}\nfn lib2() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test, "lib code before region");
        assert!(lines[3].in_test, "inside cfg(test) mod");
        assert!(!lines[5].in_test, "after the region closes");
    }

    #[test]
    fn mod_tests_without_attr_is_a_test_region() {
        let lines = scan("mod tests {\n    fn t() {}\n}\nfn lib() {}\n");
        assert!(lines[1].in_test);
        assert!(!lines[3].in_test);
    }

    #[test]
    fn test_attr_on_fn_marks_its_body() {
        let lines = scan("#[test]\nfn t() {\n    body();\n}\nfn lib() {}\n");
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn cfg_test_out_of_line_mod_does_not_poison_the_rest() {
        let lines = scan("#[cfg(test)]\nmod tests;\nfn lib() {}\n");
        assert!(!lines[2].in_test);
    }

    #[test]
    fn attr_inside_string_does_not_start_a_region() {
        let lines = scan("let s = \"#[cfg(test)]\";\nfn f() { body(); }\n");
        assert!(!lines[1].in_test);
    }

    #[test]
    fn mod_tests_in_comment_does_not_start_a_region() {
        let lines = scan("// mod tests {\nfn f() { body(); }\n");
        assert!(!lines[1].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lines = scan("#[cfg(not(feature = \"x\"))]\nfn f() {\n    body();\n}\n");
        assert!(!lines[2].in_test);
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("MyHashMap", "HashMap"));
        assert!(!contains_word("HashMapLike", "HashMap"));
        assert_eq!(find_word("a HashMap b HashMap", "HashMap", 3), Some(12));
    }
}
