//! Item-level parsing: a tokenizer-backed pass over the scanner's code
//! channel that extracts `fn` items (with their enclosing `mod` / `impl`
//! context), the calls each function makes, its loop-body line ranges,
//! and the order in which it acquires locks.
//!
//! This is deliberately *not* a full Rust parser. It tracks brace depth
//! and a scope stack (module / impl / fn / loop / plain block) over a
//! token stream, which is enough to answer the questions the workspace
//! rules ask — "which function does line N belong to", "what does it
//! call", "is this line inside a loop body" — without type inference or
//! macro expansion. Known precision limits are documented in
//! `DESIGN.md` §13.

use crate::context::FileContext;
use crate::scanner::Line;

/// One token of the code channel, tagged with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// `::`
    PathSep,
    /// Any single significant symbol (`{`, `}`, `(`, `)`, `.`, `;`, `!`, …).
    Sym(char),
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub enum Call {
    /// `foo(…)`, `path::to::foo(…)` — free-function call with its path
    /// segments (last segment is the function name).
    Path { line: usize, segs: Vec<String> },
    /// `.foo(…)` — method call, resolvable by name only.
    Method { line: usize, name: String },
}

impl Call {
    /// 1-based line the call occurs on.
    pub fn line(&self) -> usize {
        match self {
            Call::Path { line, .. } => *line,
            Call::Method { line, .. } => *line,
        }
    }
}

/// A lock acquisition (`receiver.lock()` / `.read()` / `.write()`) with
/// the receiver chain it was called on (e.g. `self.inner`, `REGISTRY`).
#[derive(Debug, Clone)]
pub struct LockSite {
    pub line: usize,
    /// Dotted receiver chain, e.g. `"self.inner"`. Only simple chains of
    /// identifiers are tracked; anything with intervening calls is
    /// skipped (unresolvable statically).
    pub receiver: String,
    /// `lock`, `read`, or `write`.
    pub method: String,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name; impl methods are qualified as `Type::name`.
    pub name: String,
    /// Crate the function lives in (from the file's [`FileContext`]).
    pub crate_name: String,
    /// Module path inside the crate: file module plus any inline `mod`
    /// blocks, e.g. `["engine"]` or `["engine", "detail"]`.
    pub modules: Vec<String>,
    /// Whether the item is `pub` (any visibility qualifier counts:
    /// `pub`, `pub(crate)`, …).
    pub is_pub: bool,
    /// Whether the function sits in a test region.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's closing brace (start_line for
    /// body-less declarations).
    pub end_line: usize,
    /// Calls made in the body, in source order.
    pub calls: Vec<Call>,
    /// Loop-body line ranges (inclusive, including the loop header line —
    /// a header allocation re-runs per iteration of any enclosing loop).
    pub loop_ranges: Vec<(usize, usize)>,
    /// Lock acquisitions in source order.
    pub locks: Vec<LockSite>,
}

impl FnItem {
    /// Whether `line` falls inside this function.
    pub fn contains_line(&self, line: usize) -> bool {
        line >= self.start_line && line <= self.end_line
    }

    /// Whether `line` is inside one of the function's loop bodies.
    pub fn line_in_loop(&self, line: usize) -> bool {
        self.loop_ranges
            .iter()
            .any(|&(s, e)| line >= s && line <= e)
    }

    /// Display form used in taint paths: `crate::fn` or
    /// `crate::Type::method`.
    pub fn display(&self) -> String {
        format!("{}::{}", self.crate_name, self.name)
    }

    /// Full path segments for call resolution:
    /// `[crate, mod…, (Type,) name]`.
    pub fn path_segs(&self) -> Vec<String> {
        let mut segs = vec![self.crate_name.clone()];
        segs.extend(self.modules.iter().cloned());
        // `Type::name` contributes two resolution segments.
        for part in self.name.split("::") {
            segs.push(part.to_string());
        }
        segs
    }

    /// Bare function name (method name for impl methods).
    pub fn bare_name(&self) -> &str {
        self.name.rsplit("::").next().unwrap_or(&self.name)
    }

    /// True for impl methods (`Type::name`).
    pub fn is_method(&self) -> bool {
        self.name.contains("::")
    }
}

/// Rust keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move", "mut", "ref",
    "else", "break", "continue", "unsafe", "where", "impl", "dyn", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static", "crate", "self", "Self", "super", "async", "await",
    "box",
];

/// Tokenizes the code channel of scanned lines. String/char interiors and
/// comments are already blanked, so no literal content reaches here.
pub(crate) fn tokenize(lines: &[Line]) -> Vec<(usize, Tok)> {
    let mut toks = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                toks.push((lineno, Tok::Ident(s)));
            } else if c.is_ascii_digit() {
                // Numeric literal (incl. hex, suffixes, floats): skip as a
                // unit so `1.0` does not produce a `.` token.
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || chars[i] == '_'
                        || chars[i] == '.'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))))
                {
                    // Stop `0..10` from being eaten as one number.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                toks.push((lineno, Tok::PathSep));
                i += 2;
            } else {
                toks.push((lineno, Tok::Sym(c)));
                i += 1;
            }
        }
    }
    toks
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ScopeKind {
    Module(String),
    Impl(String),
    Fn(usize),
    Loop(usize),
    Block,
}

/// Parses one scanned file into its function items.
pub fn parse_file(ctx: &FileContext, lines: &[Line]) -> Vec<FnItem> {
    let toks = tokenize(lines);
    let file_modules = file_module_path(ctx);
    let mut items: Vec<FnItem> = Vec::new();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut pending: Option<ScopeKind> = None;

    let mut i = 0;
    while i < toks.len() {
        let (lineno, tok) = &toks[i];
        match tok {
            Tok::Ident(word) => match word.as_str() {
                "mod" => {
                    if let Some((_, Tok::Ident(name))) = toks.get(i + 1) {
                        pending = Some(ScopeKind::Module(name.clone()));
                    }
                    i += 1;
                }
                "impl" => {
                    pending = Some(ScopeKind::Impl(impl_type_name(&toks, i + 1)));
                    i += 1;
                }
                "fn" => {
                    if let Some((_, Tok::Ident(name))) = toks.get(i + 1) {
                        // Nested fns inside a fn body are parsed as their
                        // own items too (they get their own scope).
                        let impl_type = scopes.iter().rev().find_map(|s| match s {
                            ScopeKind::Impl(t) => Some(t.clone()),
                            _ => None,
                        });
                        let qualified = match impl_type {
                            Some(t) => format!("{t}::{name}"),
                            None => name.clone(),
                        };
                        let mut modules = file_modules.clone();
                        for s in &scopes {
                            if let ScopeKind::Module(m) = s {
                                modules.push(m.clone());
                            }
                        }
                        let is_pub = is_pub_before(&toks, i);
                        let in_test = lines.get(lineno - 1).map(|l| l.in_test).unwrap_or(false);
                        items.push(FnItem {
                            name: qualified,
                            crate_name: ctx.crate_name.clone(),
                            modules,
                            is_pub,
                            in_test,
                            start_line: *lineno,
                            end_line: *lineno,
                            calls: Vec::new(),
                            loop_ranges: Vec::new(),
                            locks: Vec::new(),
                        });
                        pending = Some(ScopeKind::Fn(items.len() - 1));
                    }
                    i += 1;
                }
                "for" | "while" | "loop" => {
                    // Only loop headers inside an already-open fn body
                    // matter. A pending scope means we are between a
                    // `fn`/`impl`/`mod` keyword and its `{` — the `for` of
                    // `impl T for U` or a `for<'a>` bound, not a loop.
                    let in_fn = scopes.iter().any(|s| matches!(s, ScopeKind::Fn(_)));
                    if in_fn && pending.is_none() {
                        pending = Some(ScopeKind::Loop(*lineno));
                    }
                    i += 1;
                }
                _ => {
                    record_body_facts(&toks, i, &mut items, &scopes);
                    i += 1;
                }
            },
            Tok::Sym('{') => {
                scopes.push(pending.take().unwrap_or(ScopeKind::Block));
                i += 1;
            }
            Tok::Sym('}') => {
                match scopes.pop() {
                    Some(ScopeKind::Fn(idx)) => items[idx].end_line = *lineno,
                    Some(ScopeKind::Loop(start)) => {
                        let owner = scopes.iter().rev().find_map(|s| match s {
                            ScopeKind::Fn(idx) => Some(*idx),
                            _ => None,
                        });
                        if let Some(idx) = owner {
                            items[idx].loop_ranges.push((start, *lineno));
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            Tok::Sym(';') => {
                // `mod x;`, trait `fn f(…);`, `impl Trait for T;` — the
                // pending scope never opens.
                pending = None;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    // Unclosed scopes (truncated/odd files): close items at the last line.
    let last = lines.len();
    for s in scopes {
        if let ScopeKind::Fn(idx) = s {
            items[idx].end_line = last;
        }
    }
    items
}

/// Records call / lock facts for an identifier token when inside a fn.
fn record_body_facts(toks: &[(usize, Tok)], i: usize, items: &mut [FnItem], scopes: &[ScopeKind]) {
    let Some(fn_idx) = scopes.iter().rev().find_map(|s| match s {
        ScopeKind::Fn(idx) => Some(*idx),
        _ => None,
    }) else {
        return;
    };
    let (lineno, Tok::Ident(name)) = &toks[i] else {
        return;
    };
    if NON_CALL_KEYWORDS.contains(&name.as_str()) {
        return;
    }
    // A call is an identifier directly followed by `(`, or by `::<…>(`
    // (turbofish — skipped here; rare enough to ignore).
    let followed_by_paren = matches!(toks.get(i + 1), Some((_, Tok::Sym('('))));
    if !followed_by_paren {
        return;
    }
    let is_method = matches!(toks.get(i.wrapping_sub(1)), Some((_, Tok::Sym('.')))) && i > 0;
    if is_method {
        if matches!(name.as_str(), "lock" | "read" | "write") {
            if let Some(receiver) = receiver_chain(toks, i - 1) {
                items[fn_idx].locks.push(LockSite {
                    line: *lineno,
                    receiver,
                    method: name.clone(),
                });
            }
        }
        items[fn_idx].calls.push(Call::Method {
            line: *lineno,
            name: name.clone(),
        });
        return;
    }
    // Collect the leading path: (Ident ::)* name
    let mut segs = vec![name.clone()];
    let mut j = i;
    while j >= 2
        && matches!(toks.get(j - 1), Some((_, Tok::PathSep)))
        && matches!(toks.get(j - 2), Some((_, Tok::Ident(_))))
    {
        if let Some((_, Tok::Ident(seg))) = toks.get(j - 2) {
            segs.insert(0, seg.clone());
        }
        j -= 2;
    }
    items[fn_idx].calls.push(Call::Path {
        line: *lineno,
        segs,
    });
}

/// Walks back from the `.` before a method name, collecting a simple
/// dotted identifier chain (`self.inner`, `REGISTRY`). Returns `None`
/// when the receiver is an expression (call result, index, …) that a
/// static pass cannot name.
fn receiver_chain(toks: &[(usize, Tok)], dot_idx: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot_idx; // toks[j] == '.'
    loop {
        if j == 0 {
            break;
        }
        match &toks[j - 1].1 {
            Tok::Ident(id) => {
                parts.insert(0, id.clone());
                j -= 1;
                if j == 0 {
                    break;
                }
                match &toks[j - 1].1 {
                    Tok::Sym('.') => {
                        j -= 1;
                        continue;
                    }
                    // `state::LOCK.lock()` — fold path prefixes in too.
                    Tok::PathSep => {
                        j -= 1;
                        continue;
                    }
                    _ => break,
                }
            }
            // Anything else (closing paren/bracket) means the receiver is
            // computed, not named.
            _ => return None,
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("."))
    }
}

/// Extracts the implemented type name from the tokens after `impl`:
/// `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo` → `Foo`.
fn impl_type_name(toks: &[(usize, Tok)], mut i: usize) -> String {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while let Some((_, tok)) = toks.get(i) {
        match tok {
            Tok::Sym('<') => angle += 1,
            Tok::Sym('>') => angle -= 1,
            Tok::Sym('{') | Tok::Sym(';') => break,
            Tok::Ident(w) if angle == 0 => {
                if w == "for" {
                    saw_for = true;
                    after_for = None;
                } else if w == "where" {
                    break;
                } else if saw_for {
                    // Keep the *last* path segment after `for`
                    // (`impl T for a::b::Type` → `Type`).
                    after_for = Some(w.clone());
                } else {
                    last_ident = Some(w.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    after_for.or(last_ident).unwrap_or_else(|| "_".to_string())
}

/// `pub` (with optional `(crate)`-style restriction) anywhere in the few
/// tokens before `fn` counts as public for taint-root purposes.
fn is_pub_before(toks: &[(usize, Tok)], fn_idx: usize) -> bool {
    // Scan back over at most 8 tokens: `pub (crate) const unsafe async fn`.
    let start = fn_idx.saturating_sub(8);
    toks[start..fn_idx]
        .iter()
        .rev()
        .take_while(|(_, t)| !matches!(t, Tok::Sym(';') | Tok::Sym('{') | Tok::Sym('}')))
        .any(|(_, t)| matches!(t, Tok::Ident(w) if w == "pub"))
}

/// The module path a file contributes: `crates/serve/src/engine.rs` →
/// `["engine"]`, `src/lib.rs` → `[]`, `crates/core/src/bin/x.rs` → `["x"]`.
fn file_module_path(ctx: &FileContext) -> Vec<String> {
    let rel = &ctx.rel_path;
    let rest = rel
        .strip_prefix("crates/")
        .and_then(|t| t.split_once('/').map(|x| x.1))
        .unwrap_or(rel);
    let Some(in_src) = rest.strip_prefix("src/") else {
        // tests/examples/benches: use the file stem as a pseudo-module.
        return stem_of(rest).into_iter().collect();
    };
    let stem = in_src.trim_end_matches(".rs");
    if stem == "lib" || stem == "main" {
        return Vec::new();
    }
    stem.split('/')
        .filter(|s| *s != "bin" && *s != "mod")
        .map(str::to_string)
        .collect()
}

fn stem_of(path: &str) -> Option<String> {
    path.rsplit('/')
        .next()
        .map(|f| f.trim_end_matches(".rs").to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;
    use crate::scanner::scan;

    fn parse(path: &str, src: &str) -> Vec<FnItem> {
        let ctx = classify(path).expect("policed path");
        parse_file(&ctx, &scan(src))
    }

    #[test]
    fn extracts_fns_with_spans_and_visibility() {
        let src = "pub fn a() {\n    b();\n}\nfn b() {}\n";
        let items = parse("crates/glm/src/x.rs", src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "a");
        assert!(items[0].is_pub);
        assert_eq!((items[0].start_line, items[0].end_line), (1, 3));
        assert!(!items[1].is_pub);
    }

    #[test]
    fn impl_methods_are_type_qualified() {
        let src = "struct S;\nimpl S {\n    pub fn m(&self) { helper(); }\n}\nimpl Clone for S {\n    fn clone(&self) -> S { S }\n}\n";
        let items = parse("crates/glm/src/x.rs", src);
        assert_eq!(items[0].name, "S::m");
        assert_eq!(items[1].name, "S::clone");
        assert!(items[0].is_method());
        assert_eq!(items[0].bare_name(), "m");
    }

    #[test]
    fn calls_carry_paths() {
        let src = "fn f() {\n    g();\n    mod_a::h(1);\n    x.method(2);\n}\n";
        let items = parse("crates/glm/src/x.rs", src);
        let calls = &items[0].calls;
        assert!(matches!(&calls[0], Call::Path { segs, .. } if segs == &["g"]));
        assert!(matches!(&calls[1], Call::Path { segs, .. } if segs == &["mod_a", "h"]));
        assert!(matches!(&calls[2], Call::Method { name, .. } if name == "method"));
    }

    #[test]
    fn loop_bodies_are_ranged() {
        let src = "fn f(v: &[u32]) {\n    let mut s = 0;\n    for x in v {\n        s += x;\n    }\n    while s > 0 {\n        s -= 1;\n    }\n}\n";
        let items = parse("crates/linalg/src/x.rs", src);
        assert_eq!(items[0].loop_ranges, vec![(3, 5), (6, 8)]);
        assert!(items[0].line_in_loop(4));
        assert!(!items[0].line_in_loop(2));
    }

    #[test]
    fn impl_trait_for_type_is_not_a_loop() {
        let src = "impl Iterator for S {\n    type Item = u32;\n    fn next(&mut self) -> Option<u32> { None }\n}\n";
        let items = parse("crates/glm/src/x.rs", src);
        assert_eq!(items[0].name, "S::next");
        assert!(items[0].loop_ranges.is_empty());
    }

    #[test]
    fn lock_sequences_record_receivers() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    let c = GLOBAL.write();\n    let d = make().lock();\n}\n";
        let items = parse("crates/serve/src/x.rs", src);
        let locks: Vec<(&str, &str)> = items[0]
            .locks
            .iter()
            .map(|l| (l.receiver.as_str(), l.method.as_str()))
            .collect();
        // `make().lock()` has a computed receiver and is not tracked.
        assert_eq!(
            locks,
            vec![
                ("self.alpha", "lock"),
                ("self.beta", "lock"),
                ("GLOBAL", "write")
            ]
        );
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let src = "mod inner {\n    pub fn f() {}\n}\n";
        let items = parse("crates/serve/src/engine.rs", src);
        assert_eq!(items[0].modules, vec!["engine", "inner"]);
        assert_eq!(items[0].path_segs(), vec!["serve", "engine", "inner", "f"]);
        assert_eq!(items[0].display(), "serve::f");
    }

    #[test]
    fn test_regions_are_flagged() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let items = parse("crates/glm/src/x.rs", src);
        assert!(!items[0].in_test);
        assert!(items[1].in_test);
    }

    #[test]
    fn numbers_do_not_confuse_the_tokenizer() {
        let src = "fn f() {\n    let x = 1.0e-3;\n    let r = 0..10;\n    g(0xcbf2_9ce4);\n}\n";
        let items = parse("crates/glm/src/x.rs", src);
        // `1.0e-3` must not produce a `.` token that looks like a method
        // call; `g` is still seen as a call.
        assert_eq!(items[0].calls.len(), 1);
        assert!(matches!(&items[0].calls[0], Call::Path { segs, .. } if segs == &["g"]));
    }

    #[test]
    fn fn_without_body_has_no_span_growth() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_default(&self) { helper(); }\n}\n";
        let items = parse("crates/glm/src/x.rs", src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].end_line, items[0].start_line);
        assert_eq!(items[1].calls.len(), 1);
    }
}
