//! Workspace call graph over the parsed function items.
//!
//! Resolution is name-based (module-path suffix matching) with no type
//! inference: a `path::to::foo(…)` call resolves to the unique workspace
//! function whose `[crate, modules…, (Type,) name]` path ends with the
//! call's (normalized) segments; a bare `foo(…)` call prefers a match in
//! the same file, then the same crate, then a unique global match; a
//! `.method(…)` call resolves only when exactly one impl method in the
//! workspace has that name. Ambiguous calls produce no edge — the graph
//! under-approximates rather than guessing. Precision limits are
//! documented in `DESIGN.md` §13.

use std::collections::BTreeMap;

use crate::parse::{Call, FnItem};
use crate::FileUnit;

/// One node of the call graph: a parsed function plus its file.
#[derive(Debug, Clone)]
pub struct Node {
    pub item: FnItem,
    /// Workspace-relative path of the defining file.
    pub file: String,
}

/// Reachability record produced by [`CallGraph::reach_from`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reach {
    Unreached,
    /// The node is itself a BFS root.
    Root,
    /// Reached via this parent node (shortest hop count; first root wins
    /// ties deterministically).
    Via(usize),
}

#[derive(Debug)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// Resolved callee indices per node, sorted + deduped.
    edges: Vec<Vec<usize>>,
    pub edge_count: usize,
}

impl CallGraph {
    /// Builds the graph over every parsed function in `units`. Node order
    /// follows unit order then source order, so indices are deterministic
    /// for a given file set.
    pub fn build(units: &[FileUnit]) -> CallGraph {
        let mut nodes: Vec<Node> = Vec::new();
        for unit in units {
            for item in &unit.items {
                nodes.push(Node {
                    item: item.clone(),
                    file: unit.ctx.rel_path.clone(),
                });
            }
        }

        // Name indexes. `by_last_seg` covers every fn keyed by bare name;
        // `methods` covers impl methods only.
        let mut by_last_seg: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, node) in nodes.iter().enumerate() {
            by_last_seg
                .entry(node.item.bare_name())
                .or_default()
                .push(idx);
            if node.item.is_method() {
                methods.entry(node.item.bare_name()).or_default().push(idx);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut edge_count = 0usize;
        for caller in 0..nodes.len() {
            let calls = nodes[caller].item.calls.clone();
            for call in &calls {
                if let Some(callee) = resolve(&nodes, &by_last_seg, &methods, caller, call) {
                    edges[caller].push(callee);
                }
            }
            edges[caller].sort_unstable();
            edges[caller].dedup();
            edge_count += edges[caller].len();
        }

        CallGraph {
            nodes,
            edges,
            edge_count,
        }
    }

    /// The innermost function containing `file:line`, if any.
    pub fn fn_at(&self, file: &str, line: usize) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.item.contains_line(line))
            .max_by_key(|(_, n)| n.item.start_line)
            .map(|(idx, _)| idx)
    }

    /// BFS from `roots`, recording shortest-path parents. Roots must be
    /// sorted for deterministic tie-breaking.
    pub fn reach_from(&self, roots: &[usize]) -> Vec<Reach> {
        let mut reach = vec![Reach::Unreached; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if reach[r] == Reach::Unreached {
                reach[r] = Reach::Root;
                queue.push_back(r);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for &next in &self.edges[cur] {
                if reach[next] == Reach::Unreached {
                    reach[next] = Reach::Via(cur);
                    queue.push_back(next);
                }
            }
        }
        reach
    }

    /// Walks parents back to a root: returns node indices root → … → idx.
    /// Empty when `idx` is unreached.
    pub fn path_to(&self, reach: &[Reach], idx: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = idx;
        loop {
            match reach[cur] {
                Reach::Unreached => return Vec::new(),
                Reach::Root => {
                    path.push(cur);
                    path.reverse();
                    return path;
                }
                Reach::Via(parent) => {
                    path.push(cur);
                    cur = parent;
                    // Defensive: parent chains are acyclic by construction,
                    // but cap the walk anyway.
                    if path.len() > self.nodes.len() {
                        return Vec::new();
                    }
                }
            }
        }
    }
}

/// Normalizes a call path for suffix matching: strips leading
/// `crate`/`self`/`super` qualifiers and maps `mlstar_<x>` crate names to
/// the workspace's bare crate names.
fn normalize_segs(segs: &[String]) -> Vec<String> {
    let mut out: Vec<String> = segs
        .iter()
        .skip_while(|s| matches!(s.as_str(), "crate" | "self" | "super"))
        .cloned()
        .collect();
    if let Some(first) = out.first_mut() {
        if let Some(bare) = first.strip_prefix("mlstar_") {
            *first = bare.to_string();
        }
    }
    out
}

fn resolve(
    nodes: &[Node],
    by_last_seg: &BTreeMap<&str, Vec<usize>>,
    methods: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    call: &Call,
) -> Option<usize> {
    match call {
        Call::Method { name, .. } => {
            let cands = methods.get(name.as_str())?;
            if cands.len() == 1 {
                Some(cands[0])
            } else {
                None
            }
        }
        Call::Path { segs, .. } => {
            let segs = normalize_segs(segs);
            let last = segs.last()?;
            let cands = by_last_seg.get(last.as_str())?;
            let matching: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&idx| {
                    let node = &nodes[idx];
                    // A bare `foo()` never names an impl method directly.
                    if segs.len() == 1 && node.item.is_method() {
                        return false;
                    }
                    let path = node.item.path_segs();
                    path.len() >= segs.len() && path[path.len() - segs.len()..] == segs[..]
                })
                .collect();
            // Most-specific tier with exactly one candidate wins.
            let same_file: Vec<usize> = matching
                .iter()
                .copied()
                .filter(|&i| nodes[i].file == nodes[caller].file)
                .collect();
            let tier = if !same_file.is_empty() {
                same_file
            } else {
                let same_crate: Vec<usize> = matching
                    .iter()
                    .copied()
                    .filter(|&i| nodes[i].item.crate_name == nodes[caller].item.crate_name)
                    .collect();
                if !same_crate.is_empty() {
                    same_crate
                } else {
                    matching
                }
            };
            if tier.len() == 1 {
                Some(tier[0])
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;
    use crate::parse::parse_file;
    use crate::scanner::scan;

    fn units(files: &[(&str, &str)]) -> Vec<FileUnit> {
        files
            .iter()
            .map(|(path, src)| {
                let ctx = classify(path).expect("policed path");
                let lines = scan(src);
                let items = parse_file(&ctx, &lines);
                FileUnit {
                    ctx,
                    lines,
                    items,
                    waivers: Vec::new(),
                }
            })
            .collect()
    }

    fn idx_of(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.item.name == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn bare_calls_resolve_within_file_then_crate() {
        let u = units(&[
            (
                "crates/glm/src/a.rs",
                "pub fn entry() {\n    helper();\n}\nfn helper() {}\n",
            ),
            ("crates/glm/src/b.rs", "fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&u);
        let entry = idx_of(&g, "entry");
        let reach = g.reach_from(&[entry]);
        // Same-file helper is reached; the b.rs twin is not.
        let a_helper = g.fn_at("crates/glm/src/a.rs", 4).unwrap();
        let b_helper = g.fn_at("crates/glm/src/b.rs", 1).unwrap();
        assert!(matches!(reach[a_helper], Reach::Via(_)));
        assert_eq!(reach[b_helper], Reach::Unreached);
    }

    #[test]
    fn cross_crate_paths_resolve_with_mlstar_prefix() {
        let u = units(&[
            (
                "crates/glm/src/a.rs",
                "pub fn entry() {\n    mlstar_codec::pack(1);\n}\n",
            ),
            ("crates/codec/src/lib.rs", "pub fn pack(x: u32) {}\n"),
        ]);
        let g = CallGraph::build(&u);
        let reach = g.reach_from(&[idx_of(&g, "entry")]);
        assert!(matches!(reach[idx_of(&g, "pack")], Reach::Via(_)));
    }

    #[test]
    fn ambiguous_calls_make_no_edge() {
        let u = units(&[
            (
                "crates/glm/src/a.rs",
                "pub fn entry() {\n    helper();\n}\n",
            ),
            ("crates/data/src/b.rs", "pub fn helper() {}\n"),
            ("crates/serve/src/c.rs", "pub fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&u);
        assert_eq!(g.edge_count, 0);
    }

    #[test]
    fn methods_resolve_only_when_globally_unique() {
        let u = units(&[
            (
                "crates/glm/src/a.rs",
                "pub fn entry(s: &S) {\n    s.step_once();\n    s.len();\n}\n",
            ),
            (
                "crates/glm/src/b.rs",
                "impl S {\n    pub fn step_once(&self) {}\n    pub fn len(&self) -> usize { 0 }\n}\n",
            ),
            (
                "crates/data/src/c.rs",
                "impl T {\n    pub fn len(&self) -> usize { 0 }\n}\n",
            ),
        ]);
        let g = CallGraph::build(&u);
        let reach = g.reach_from(&[idx_of(&g, "entry")]);
        assert!(matches!(reach[idx_of(&g, "S::step_once")], Reach::Via(_)));
        // `len` is defined on two types: no edge to either.
        assert_eq!(reach[idx_of(&g, "S::len")], Reach::Unreached);
        assert_eq!(reach[idx_of(&g, "T::len")], Reach::Unreached);
    }

    #[test]
    fn path_to_walks_back_to_the_root() {
        let u = units(&[(
            "crates/glm/src/a.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let g = CallGraph::build(&u);
        let reach = g.reach_from(&[idx_of(&g, "a")]);
        let path = g.path_to(&reach, idx_of(&g, "c"));
        let names: Vec<&str> = path
            .iter()
            .map(|&i| g.nodes[i].item.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn fn_at_picks_the_innermost_item() {
        let u = units(&[(
            "crates/glm/src/a.rs",
            "pub fn outer() {\n    fn inner() {\n        work();\n    }\n    inner();\n}\n",
        )]);
        let g = CallGraph::build(&u);
        let at = g.fn_at("crates/glm/src/a.rs", 3).unwrap();
        assert_eq!(g.nodes[at].item.name, "inner");
        let at5 = g.fn_at("crates/glm/src/a.rs", 5).unwrap();
        assert_eq!(g.nodes[at5].item.name, "outer");
    }
}
