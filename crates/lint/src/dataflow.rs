//! Intraprocedural dataflow: per-function ordered *effect sequences*
//! over the wire-codec primitive vocabulary, and the `codec_symmetry`
//! rule built on them.
//!
//! Every hand-rolled binary format in the workspace (artifact "MLSA",
//! checkpoint "MLSC", registry "MLSR", net protocol "MLSN", model frames
//! "MLS*") is a pair of functions — a writer driving `codec::Writer::put_*`
//! or `bytes::BufMut::put_*_le` and a reader driving `codec::Reader` or
//! `bytes::Buf` primitives — that must agree field-for-field
//! on order, width, loop structure, and branch structure. This module
//! extracts both sides as effect sequences from the token stream the
//! [`crate::parse`] scope tracker already produces, normalizes them, and
//! diagnoses any divergence with a side-by-side sequence diff.
//!
//! The model (full precision discussion in DESIGN.md §16):
//!
//! * **Primitives** — `put_u8`…`put_bytes` on the writer side and
//!   `u8()`…`bytes()` reader methods both map to the same [`Prim`]
//!   alphabet, so a `put_u32` paired with a `u64()` read is a width
//!   mismatch, not two unrelated calls.
//! * **Helpers** — calls named `put_X`/`get_X`/`read_X`/`write_X`/
//!   `encode_X`/`decode_X` (or exactly `encode`/`decode`) are inlined
//!   when the callee is in scope, otherwise kept as an opaque `<X>`
//!   marker that still must match positionally across the pair.
//! * **Structure** — `for`/`while`/`loop` bodies become `{ … }*` nodes;
//!   `match`/`if` arms become `( a | b )` nodes. Branch arms are
//!   normalized (empty arms dropped, duplicate arms merged, a shared
//!   leading primitive hoisted out) so a writer `match` and the reader's
//!   tag dispatch compare equal when — and only when — they move the
//!   same bytes.
//! * **Envelope ops** (`into_frame`, `decode_frame`, `finish`, …) are
//!   ignored: the frame header/checksum layer is symmetric by
//!   construction and carries no field information.
//!
//! A pair where either normalized side is empty is skipped rather than
//! diagnosed: a delegating codec (e.g. the registry's frame-chain
//! replay) is out of this pass's reach and stays covered by round-trip
//! tests.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::{FileContext, FileRole};
use crate::parse::{tokenize, Tok};
use crate::rules::{self, RuleId, Violation};
use crate::FileUnit;

/// The wire-primitive alphabet shared by writers and readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prim {
    U8,
    U16,
    U32,
    U64,
    F64,
    Str16,
    Blob64,
    Bytes,
}

impl Prim {
    fn render(self) -> &'static str {
        match self {
            Prim::U8 => "u8",
            Prim::U16 => "u16",
            Prim::U32 => "u32",
            Prim::U64 => "u64",
            Prim::F64 => "f64",
            Prim::Str16 => "str16",
            Prim::Blob64 => "blob64",
            Prim::Bytes => "bytes",
        }
    }
}

/// Writer-side primitive method names. The `_le` variants are the
/// `bytes::BufMut` spellings used by the `collectives::wire` frames; they
/// map to the same width alphabet as the `codec::Writer` names, so a
/// `put_u32_le` write paired with a `u64()` read is still a width
/// mismatch.
const WRITER_PRIMS: &[(&str, Prim)] = &[
    ("put_u8", Prim::U8),
    ("put_u16", Prim::U16),
    ("put_u32", Prim::U32),
    ("put_u64", Prim::U64),
    ("put_f64", Prim::F64),
    ("put_str16", Prim::Str16),
    ("put_blob64", Prim::Blob64),
    ("put_bytes", Prim::Bytes),
    ("put_u32_le", Prim::U32),
    ("put_u64_le", Prim::U64),
    ("put_f64_le", Prim::F64),
];

/// Reader-side primitive method names (method position required — `u8`
/// etc. are too short to trust as free identifiers, and the `bytes::Buf`
/// getters would otherwise collide with the `get_X` helper namespace).
const READER_PRIMS: &[(&str, Prim)] = &[
    ("u8", Prim::U8),
    ("u16", Prim::U16),
    ("u32", Prim::U32),
    ("u64", Prim::U64),
    ("f64", Prim::F64),
    ("str16", Prim::Str16),
    ("blob64", Prim::Blob64),
    ("bytes", Prim::Bytes),
    ("get_u8", Prim::U8),
    ("get_u32_le", Prim::U32),
    ("get_u64_le", Prim::U64),
    ("get_f64_le", Prim::F64),
];

/// Frame-envelope operations: symmetric by construction (magic, version,
/// length, FNV-1a checksum live in `codec::{encode_frame, decode_frame}`)
/// and therefore carry no field information.
const ENVELOPE_OPS: &[&str] = &[
    "encode_frame",
    "decode_frame",
    "into_frame",
    "finish",
    "peek_version",
    "frame_span",
];

/// One node of an effect sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// A wire primitive read or write.
    Prim(Prim),
    /// A codec-shaped call that could not be resolved in scope, kept as
    /// an opaque marker by stem so both sides can still match on it.
    Helper(String),
    /// A codec-shaped call pending resolution (inlining turns this into
    /// the callee's sequence or a [`Effect::Helper`]).
    Call(String),
    /// A `for`/`while`/`loop` body.
    Loop(Vec<Effect>),
    /// `match`/`if` alternatives.
    Branch(Vec<Vec<Effect>>),
}

/// `put_span` → `span`; `encode` / `decode` → `self`.
fn helper_stem(name: &str) -> Option<String> {
    if name == "encode" || name == "decode" {
        return Some("self".to_string());
    }
    for p in ["put_", "get_", "read_", "write_", "encode_", "decode_"] {
        if let Some(rest) = name.strip_prefix(p) {
            if !rest.is_empty() {
                return Some(rest.to_string());
            }
        }
    }
    None
}

/// Classifies an identifier-followed-by-`(` token as an effect, if any.
fn call_effect(toks: &[(usize, Tok)], i: usize) -> Option<Effect> {
    let (_, Tok::Ident(name)) = &toks[i] else {
        return None;
    };
    if !matches!(toks.get(i + 1), Some((_, Tok::Sym('(')))) {
        return None;
    }
    if let Some(&(_, p)) = WRITER_PRIMS.iter().find(|(m, _)| m == name) {
        return Some(Effect::Prim(p));
    }
    let is_method = i > 0 && matches!(toks.get(i - 1), Some((_, Tok::Sym('.'))));
    if is_method {
        if let Some(&(_, p)) = READER_PRIMS.iter().find(|(m, _)| m == name) {
            return Some(Effect::Prim(p));
        }
    }
    if ENVELOPE_OPS.contains(&name.as_str()) {
        return None;
    }
    if helper_stem(name).is_some() {
        return Some(Effect::Call(name.clone()));
    }
    None
}

#[derive(Debug)]
enum FrameKind {
    /// The fn body itself; its closing brace ends extraction.
    Body,
    /// Plain/struct-literal/arm block — transparent.
    Block,
    Loop,
    Match {
        arms: Vec<Vec<Effect>>,
        seen_arrow: bool,
    },
    If {
        arms: Vec<Vec<Effect>>,
    },
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    effects: Vec<Effect>,
    /// `(`/`[` nesting inside this frame — arm separators only count at
    /// depth 0.
    depth: i32,
}

enum Pend {
    Loop,
    Match,
    If(Vec<Vec<Effect>>),
}

/// Extracts the raw effect sequence of the fn whose `fn` keyword is at
/// token index `fn_idx`. Returns an empty sequence for body-less
/// declarations or anything too deep/odd to walk.
fn extract_body(toks: &[(usize, Tok)], fn_idx: usize) -> Vec<Effect> {
    // Find the body's opening brace. A depth-0 `;` first means no body —
    // but `[u8; 41]` in a return type nests its `;` inside brackets.
    let mut i = fn_idx + 1;
    let mut sig_depth = 0i32;
    loop {
        match toks.get(i) {
            Some((_, Tok::Sym('{'))) => break,
            Some((_, Tok::Sym('(' | '['))) => sig_depth += 1,
            Some((_, Tok::Sym(')' | ']'))) => sig_depth -= 1,
            Some((_, Tok::Sym(';'))) if sig_depth == 0 => return Vec::new(),
            None => return Vec::new(),
            _ => {}
        }
        i += 1;
    }
    i += 1;

    let mut frames = vec![Frame {
        kind: FrameKind::Body,
        effects: Vec::new(),
        depth: 0,
    }];
    let mut pending: Option<Pend> = None;

    while i < toks.len() {
        if frames.len() > 64 {
            return Vec::new();
        }
        match &toks[i].1 {
            Tok::Ident(w) => match w.as_str() {
                "for" | "while" | "loop" => {
                    if pending.is_none() {
                        pending = Some(Pend::Loop);
                    }
                }
                "match" => pending = Some(Pend::Match),
                "if" => {
                    if !matches!(pending, Some(Pend::If(_))) {
                        pending = Some(Pend::If(Vec::new()));
                    }
                }
                _ => {
                    if let Some(e) = call_effect(toks, i) {
                        if let Some(top) = frames.last_mut() {
                            top.effects.push(e);
                        }
                    }
                }
            },
            Tok::Sym('{') => {
                let kind = match pending.take() {
                    Some(Pend::Loop) => FrameKind::Loop,
                    Some(Pend::Match) => FrameKind::Match {
                        arms: Vec::new(),
                        seen_arrow: false,
                    },
                    Some(Pend::If(arms)) => FrameKind::If { arms },
                    None => FrameKind::Block,
                };
                frames.push(Frame {
                    kind,
                    effects: Vec::new(),
                    depth: 0,
                });
            }
            Tok::Sym('}') => {
                let Some(frame) = frames.pop() else {
                    return Vec::new();
                };
                match frame.kind {
                    FrameKind::Body => return frame.effects,
                    FrameKind::Block => {
                        if let Some(top) = frames.last_mut() {
                            top.effects.extend(frame.effects);
                        }
                    }
                    FrameKind::Loop => {
                        if let Some(top) = frames.last_mut() {
                            top.effects.push(Effect::Loop(frame.effects));
                        }
                    }
                    FrameKind::Match { mut arms, .. } => {
                        arms.push(frame.effects);
                        if let Some(top) = frames.last_mut() {
                            top.effects.push(Effect::Branch(arms));
                        }
                    }
                    FrameKind::If { mut arms } => {
                        arms.push(frame.effects);
                        if matches!(toks.get(i + 1), Some((_, Tok::Ident(w))) if w == "else") {
                            // `} else {` / `} else if … {` continue the
                            // same alternative set.
                            pending = Some(Pend::If(arms));
                        } else if let Some(top) = frames.last_mut() {
                            top.effects.push(Effect::Branch(arms));
                        }
                    }
                }
                if frames.is_empty() {
                    return Vec::new();
                }
            }
            Tok::Sym('(') | Tok::Sym('[') => {
                if let Some(top) = frames.last_mut() {
                    top.depth += 1;
                }
            }
            Tok::Sym(')') | Tok::Sym(']') => {
                if let Some(top) = frames.last_mut() {
                    top.depth -= 1;
                }
            }
            Tok::Sym(',') => {
                if let Some(top) = frames.last_mut() {
                    if top.depth == 0 {
                        if let FrameKind::Match { arms, .. } = &mut top.kind {
                            arms.push(std::mem::take(&mut top.effects));
                        }
                    }
                }
            }
            Tok::Sym('=') => {
                // Fat arrow `=>`: finalize the previous arm (the first
                // arrow instead discards scrutinee/pattern leftovers).
                if matches!(toks.get(i + 1), Some((_, Tok::Sym('>')))) {
                    pending = None; // a `match`-guard `if` never opened
                    if let Some(top) = frames.last_mut() {
                        if top.depth == 0 {
                            if let FrameKind::Match { arms, seen_arrow } = &mut top.kind {
                                if *seen_arrow {
                                    arms.push(std::mem::take(&mut top.effects));
                                } else {
                                    top.effects.clear();
                                    *seen_arrow = true;
                                }
                            }
                        }
                    }
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    Vec::new()
}

/// One extracted codec-relevant function.
#[derive(Debug)]
struct ExtractedFn {
    file: String,
    crate_name: String,
    bare: String,
    qualified: String,
    display: String,
    start_line: usize,
    in_test: bool,
    raw: Vec<Effect>,
}

/// Which crates/modules own wire codecs. `collectives`/`wire` is the
/// model-frame codec (dense/sparse/quantized kinds over `bytes` prims);
/// its sibling modules (`compress`, `allreduce`, `size`) hold policy and
/// arithmetic, not byte layout, and stay out of scope.
fn in_codec_scope(ctx: &FileContext) -> bool {
    if ctx.role != FileRole::Lib {
        return false;
    }
    let module = rules::file_module(ctx);
    match ctx.crate_name.as_str() {
        "codec" | "serve" => true,
        "core" => module == "checkpoint",
        "net" => module == "protocol",
        "collectives" => module == "wire",
        _ => false,
    }
}

/// Inlines `Call` nodes: resolve by bare name (same file first, else
/// unique in the scope set), splice the callee's sequence, cycle-guarded
/// by the current inline path.
fn inline_seq(
    seq: &[Effect],
    file: &str,
    fns: &[ExtractedFn],
    by_bare: &BTreeMap<&str, Vec<usize>>,
    stack: &mut Vec<(String, String)>,
) -> Vec<Effect> {
    let mut out = Vec::new();
    for e in seq {
        match e {
            Effect::Call(name) => {
                let resolved = resolve(name, file, fns, by_bare);
                let key = resolved.map(|idx| (fns[idx].file.clone(), fns[idx].bare.clone()));
                match (resolved, key) {
                    (Some(idx), Some(key)) if stack.len() < 8 && !stack.contains(&key) => {
                        stack.push(key);
                        let inner = inline_seq(&fns[idx].raw, &fns[idx].file, fns, by_bare, stack);
                        stack.pop();
                        out.extend(inner);
                    }
                    _ => {
                        if let Some(stem) = helper_stem(name) {
                            out.push(Effect::Helper(stem));
                        }
                    }
                }
            }
            Effect::Loop(body) => {
                out.push(Effect::Loop(inline_seq(body, file, fns, by_bare, stack)));
            }
            Effect::Branch(arms) => out.push(Effect::Branch(
                arms.iter()
                    .map(|a| inline_seq(a, file, fns, by_bare, stack))
                    .collect(),
            )),
            other => out.push(other.clone()),
        }
    }
    out
}

fn resolve(
    name: &str,
    file: &str,
    fns: &[ExtractedFn],
    by_bare: &BTreeMap<&str, Vec<usize>>,
) -> Option<usize> {
    let candidates = by_bare.get(name)?;
    let local: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| fns[i].file == file)
        .collect();
    match (local.len(), candidates.len()) {
        (1, _) => Some(local[0]),
        (0, 1) => Some(candidates[0]),
        _ => None,
    }
}

/// Canonical normalization: drop empty loops; inside branches drop empty
/// arms, merge duplicate arms, hoist a primitive shared as the head of
/// every arm, and sort the remainder — so a writer `match` and the
/// reader's tag dispatch render identically iff they move the same bytes.
fn normalize(seq: &[Effect]) -> Vec<Effect> {
    let mut out = Vec::new();
    for e in seq {
        match e {
            Effect::Prim(p) => out.push(Effect::Prim(*p)),
            Effect::Helper(s) => out.push(Effect::Helper(s.clone())),
            Effect::Call(name) => {
                if let Some(stem) = helper_stem(name) {
                    out.push(Effect::Helper(stem));
                }
            }
            Effect::Loop(body) => {
                let nb = normalize(body);
                if !nb.is_empty() {
                    out.push(Effect::Loop(nb));
                }
            }
            Effect::Branch(arms) => {
                let mut narms: Vec<Vec<Effect>> = arms.iter().map(|a| normalize(a)).collect();
                loop {
                    narms.retain(|a| !a.is_empty());
                    let mut seen = BTreeSet::new();
                    narms.retain(|a| seen.insert(render_seq(a)));
                    if narms.len() >= 2 {
                        if let Some(&Effect::Prim(p)) = narms[0].first() {
                            if narms.iter().all(|a| a.first() == Some(&Effect::Prim(p))) {
                                out.push(Effect::Prim(p));
                                for a in &mut narms {
                                    a.remove(0);
                                }
                                continue;
                            }
                        }
                    }
                    break;
                }
                narms.sort_by_key(|a| render_seq(a));
                if !narms.is_empty() {
                    out.push(Effect::Branch(narms));
                }
            }
        }
    }
    out
}

fn render_effect(e: &Effect) -> String {
    match e {
        Effect::Prim(p) => p.render().to_string(),
        Effect::Helper(s) => format!("<{s}>"),
        Effect::Call(name) => format!("<{name}>"),
        Effect::Loop(body) => format!("{{ {} }}*", render_seq(body)),
        Effect::Branch(arms) => {
            let parts: Vec<String> = arms.iter().map(|a| render_seq(a)).collect();
            format!("( {} )", parts.join(" | "))
        }
    }
}

fn render_seq(seq: &[Effect]) -> String {
    let parts: Vec<String> = seq.iter().map(render_effect).collect();
    parts.join(" ")
}

/// Render capped for diagnostics: long sequences keep head and tail.
fn render_capped(seq: &[Effect]) -> String {
    const CAP: usize = 160;
    let full = render_seq(seq);
    if full.len() <= CAP {
        return full;
    }
    let head: String = full.chars().take(CAP - 1).collect();
    format!("{head}…")
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Writer,
    Reader,
}

/// Pairing convention: `put_X`/`write_X`/`encode_X` ↔ `get_X`/`read_X`/
/// `decode_X` by stem `X`; bare `encode`/`decode` pair by impl type.
/// Primitive and envelope names are never paired.
fn classify_codec(qualified: &str, bare: &str) -> Option<(Side, String)> {
    if WRITER_PRIMS.iter().any(|(m, _)| *m == bare)
        || READER_PRIMS.iter().any(|(m, _)| *m == bare)
        || ENVELOPE_OPS.contains(&bare)
    {
        return None;
    }
    if bare == "encode" || bare == "decode" {
        let stem = match qualified.split_once("::") {
            Some((ty, _)) => ty.to_string(),
            None => "self".to_string(),
        };
        let side = if bare == "encode" {
            Side::Writer
        } else {
            Side::Reader
        };
        return Some((side, stem));
    }
    for (p, side) in [
        ("put_", Side::Writer),
        ("write_", Side::Writer),
        ("encode_", Side::Writer),
        ("get_", Side::Reader),
        ("read_", Side::Reader),
        ("decode_", Side::Reader),
    ] {
        if let Some(rest) = bare.strip_prefix(p) {
            if !rest.is_empty() {
                return Some((side, rest.to_string()));
            }
        }
    }
    None
}

/// Human phrase for the first top-level divergence between two
/// normalized sequences.
fn divergence(w: &[Effect], r: &[Effect]) -> String {
    let n = w.len().min(r.len());
    for k in 0..n {
        let (we, re) = (render_effect(&w[k]), render_effect(&r[k]));
        if we != re {
            return format!("diverge at step {} (writer `{we}` vs reader `{re}`)", k + 1);
        }
    }
    format!(
        "have {} writer step(s) vs {} reader step(s)",
        w.len(),
        r.len()
    )
}

/// Runs the codec_symmetry rule: extract, inline, normalize, pair, diff.
pub(crate) fn pass_codec_symmetry(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    // Extract every non-test fn in codec scope.
    let mut fns: Vec<ExtractedFn> = Vec::new();
    for unit in units.iter() {
        if !in_codec_scope(&unit.ctx) {
            continue;
        }
        let toks = tokenize(&unit.lines);
        for item in &unit.items {
            if item.in_test {
                continue;
            }
            let bare = item.bare_name().to_string();
            let Some(fn_idx) = toks.iter().position(|(line, t)| {
                *line == item.start_line && matches!(t, Tok::Ident(w) if w == "fn")
            }) else {
                continue;
            };
            // Guard against two `fn` keywords on one line pointing at the
            // wrong item.
            if !matches!(toks.get(fn_idx + 1), Some((_, Tok::Ident(w))) if *w == bare) {
                continue;
            }
            fns.push(ExtractedFn {
                file: unit.ctx.rel_path.clone(),
                crate_name: item.crate_name.clone(),
                bare,
                qualified: item.name.clone(),
                display: item.display(),
                start_line: item.start_line,
                in_test: item.in_test,
                raw: extract_body(&toks, fn_idx),
            });
        }
    }

    let mut by_bare: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_bare.entry(f.bare.as_str()).or_default().push(i);
    }

    // Pair writers with readers by (crate, stem).
    let mut readers: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        if let Some((Side::Reader, stem)) = classify_codec(&f.qualified, &f.bare) {
            readers
                .entry((f.crate_name.clone(), stem))
                .or_default()
                .push(i);
        }
    }

    let mut diags: Vec<(String, usize, String, Vec<String>)> = Vec::new();
    for (wi, w) in fns.iter().enumerate() {
        let Some((Side::Writer, stem)) = classify_codec(&w.qualified, &w.bare) else {
            continue;
        };
        let Some(cands) = readers.get(&(w.crate_name.clone(), stem)) else {
            continue;
        };
        let local: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].file == w.file)
            .collect();
        let ri = match (local.len(), cands.len()) {
            (1, _) => local[0],
            (0, 1) => cands[0],
            _ => continue, // ambiguous pairing — skip, don't guess
        };

        let mut stack = vec![(w.file.clone(), w.bare.clone())];
        let wseq = normalize(&inline_seq(
            &fns[wi].raw,
            &w.file,
            &fns,
            &by_bare,
            &mut stack,
        ));
        let mut stack = vec![(fns[ri].file.clone(), fns[ri].bare.clone())];
        let rseq = normalize(&inline_seq(
            &fns[ri].raw,
            &fns[ri].file,
            &fns,
            &by_bare,
            &mut stack,
        ));
        // A delegating side the model cannot see — covered by round-trip
        // tests instead (DESIGN.md §16).
        if wseq.is_empty() || rseq.is_empty() {
            continue;
        }
        if render_seq(&wseq) == render_seq(&rseq) {
            continue;
        }
        let message = format!(
            "codec symmetry broken: `{}` / `{}` {}; writer: [{}] reader: [{}]; \
             fields must be written and read in the same order and width",
            w.display,
            fns[ri].display,
            divergence(&wseq, &rseq),
            render_capped(&wseq),
            render_capped(&rseq),
        );
        diags.push((
            w.file.clone(),
            w.start_line,
            message,
            vec![w.display.clone(), fns[ri].display.clone()],
        ));
    }

    for unit in units.iter_mut() {
        for (file, line, message, path) in &diags {
            if *file == unit.ctx.rel_path {
                rules::push(
                    unit,
                    out,
                    *line,
                    RuleId::CodecSymmetry,
                    message.clone(),
                    path.clone(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;
    use crate::scanner::scan;

    fn seq_of(src: &str, bare: &str) -> String {
        let ctx = classify("crates/serve/src/x.rs").expect("policed path");
        let lines = scan(src);
        let items = crate::parse::parse_file(&ctx, &lines);
        let toks = tokenize(&lines);
        let item = items.iter().find(|i| i.bare_name() == bare).expect("fn");
        let fn_idx = toks
            .iter()
            .position(|(line, t)| {
                *line == item.start_line && matches!(t, Tok::Ident(w) if w == "fn")
            })
            .expect("fn token");
        render_seq(&normalize(&extract_body(&toks, fn_idx)))
    }

    #[test]
    fn extracts_flat_prim_sequences() {
        let src = "fn put_x(w: &mut Writer) {\n    w.put_u32(1);\n    w.put_u64(2);\n    w.put_str16(\"s\");\n}\n";
        assert_eq!(seq_of(src, "put_x"), "u32 u64 str16");
    }

    #[test]
    fn loops_and_reader_prims_nest() {
        let src = "fn get_x(r: &mut Reader) {\n    let n = r.u64();\n    for _ in 0..n {\n        r.f64();\n    }\n}\n";
        assert_eq!(seq_of(src, "get_x"), "u64 { f64 }*");
    }

    #[test]
    fn match_arms_hoist_shared_tag_and_sort() {
        let w = "fn put_x(w: &mut Writer, v: &V) {\n    match v {\n        V::A => {\n            w.put_u8(0);\n            w.put_u64(1);\n        }\n        V::B => {\n            w.put_u8(1);\n        }\n    }\n}\n";
        let r = "fn get_x(r: &mut Reader) {\n    let tag = r.u8();\n    match tag {\n        0 => {\n            r.u64();\n        }\n        1 => {}\n        _ => {}\n    }\n}\n";
        assert_eq!(seq_of(w, "put_x"), seq_of(r, "get_x"));
        assert_eq!(seq_of(w, "put_x"), "u8 ( u64 )");
    }

    #[test]
    fn if_else_chains_become_branches() {
        let src = "fn put_x(w: &mut Writer, some: bool) {\n    if some {\n        w.put_u8(1);\n        w.put_f64(0.5);\n    } else {\n        w.put_u8(0);\n    }\n}\n";
        assert_eq!(seq_of(src, "put_x"), "u8 ( f64 )");
    }

    #[test]
    fn unresolved_helpers_keep_their_stem() {
        // Effects are recorded in *token* order (the writer's `put_blob64`
        // precedes its argument), matching the workspace idiom where the
        // reader binds the raw read before the out-of-scope transform.
        let w = "fn put_x(w: &mut Writer) {\n    w.put_blob64(encode_dense(d));\n}\n";
        let r = "fn get_x(r: &mut Reader) {\n    let b = r.blob64();\n    decode_dense(b);\n}\n";
        assert_eq!(seq_of(w, "put_x"), "blob64 <dense>");
        assert_eq!(seq_of(r, "get_x"), "blob64 <dense>");
    }

    #[test]
    fn envelope_ops_are_invisible() {
        let src = "fn put_x(w: Writer) {\n    w.put_u32(1);\n    w.into_frame(MAGIC, 1);\n}\n";
        assert_eq!(seq_of(src, "put_x"), "u32");
    }

    #[test]
    fn helpers_inline_across_the_same_file() {
        let src = "fn put_pair(w: &mut Writer) {\n    put_one(w);\n    put_one(w);\n}\nfn put_one(w: &mut Writer) {\n    w.put_u64(0);\n}\nfn get_pair(r: &mut Reader) {\n    read_one(r);\n    read_one(r);\n}\nfn read_one(r: &mut Reader) {\n    r.u64();\n}\n";
        let ctx = classify("crates/serve/src/x.rs").expect("policed path");
        let lines = scan(src);
        let items = crate::parse::parse_file(&ctx, &lines);
        let mut units = vec![crate::FileUnit {
            ctx,
            lines,
            items,
            waivers: Vec::new(),
        }];
        let mut out = Vec::new();
        pass_codec_symmetry(&mut units, &mut out);
        assert!(out.is_empty(), "symmetric pair fired: {out:?}");
    }

    #[test]
    fn swapped_fields_are_diagnosed_with_a_diff() {
        let src = "fn put_hdr(w: &mut Writer) {\n    w.put_u32(a);\n    w.put_u64(b);\n}\nfn get_hdr(r: &mut Reader) {\n    let b = r.u64();\n    let a = r.u32();\n}\n";
        let ctx = classify("crates/serve/src/x.rs").expect("policed path");
        let lines = scan(src);
        let items = crate::parse::parse_file(&ctx, &lines);
        let mut units = vec![crate::FileUnit {
            ctx,
            lines,
            items,
            waivers: Vec::new(),
        }];
        let mut out = Vec::new();
        pass_codec_symmetry(&mut units, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RuleId::CodecSymmetry);
        assert_eq!(out[0].line, 1);
        assert!(
            out[0].message.contains("diverge at step 1"),
            "{}",
            out[0].message
        );
        assert!(out[0].message.contains("[u32 u64]"), "{}", out[0].message);
        assert!(out[0].message.contains("[u64 u32]"), "{}", out[0].message);
    }
}
