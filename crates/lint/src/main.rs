#![forbid(unsafe_code)]
//! CLI for mlstar-lint. See `--help`.

use std::path::PathBuf;
use std::process::ExitCode;

use mlstar_lint::{report, scan_workspace, walk, RuleId};

const USAGE: &str = "\
mlstar-lint: determinism & panic-policy static analyzer for this workspace

USAGE:
    cargo run -p mlstar-lint [-- OPTIONS]

OPTIONS:
    --json          emit the report as JSON on stdout
    --root <DIR>    scan <DIR> instead of the enclosing cargo workspace
    --list-rules    print every rule name with a one-line description
    -h, --help      print this help

EXIT CODES:
    0  no violations
    1  violations found
    2  usage or I/O error

Waive a finding with `// lint:allow(<rule>): <reason>` on the offending
line or the line above it.";

struct Options {
    json: bool,
    root: Option<PathBuf>,
    list_rules: bool,
    help: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        root: None,
        list_rules: false,
        help: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => opts.help = true,
            "--root" => match it.next() {
                Some(dir) => opts.root = Some(PathBuf::from(dir)),
                None => return Err("--root requires a directory argument".to_string()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if opts.list_rules {
        for rule in RuleId::ALL {
            println!("{:<22} {}", rule.name(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match walk::find_workspace_root(&cwd) {
                Some(d) => d,
                None => {
                    eprintln!("error: no enclosing cargo workspace; pass --root <DIR>");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let scan = match scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", report::json_report(&scan));
    } else {
        for v in &scan.violations {
            println!("{}", report::human_line(v));
        }
        let analysis_us: u128 = scan.timings.iter().map(|t| t.micros).sum();
        eprintln!(
            "mlstar-lint: {} file(s), {} fn(s), {} call edge(s) scanned in {}.{:03}ms; {} violation(s)",
            scan.files_scanned,
            scan.functions,
            scan.edges,
            analysis_us / 1000,
            analysis_us % 1000,
            scan.violations.len()
        );
    }
    if scan.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
