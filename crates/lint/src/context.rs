//! File classification: which crate a file belongs to and what role it
//! plays (library, binary, test, example, bench), derived purely from its
//! workspace-relative path. Rules consult this to decide applicability.

/// What kind of target a `.rs` file contributes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// `src/**` excluding `src/main.rs` and `src/bin/**`.
    Lib,
    /// `src/main.rs`, `src/bin/**`, or a stray root-level script.
    Bin,
    /// `tests/**` — integration tests.
    TestCode,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

/// Classification of one workspace source file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name (`"cluster"`, `"glm"`, …) or `"root"` for the
    /// top-level `mllib-star` package.
    pub crate_name: String,
    pub role: FileRole,
    /// Whether this file is the crate root (`src/lib.rs` or `src/main.rs`)
    /// and therefore must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
}

/// Crates whose library code participates in the simulated cluster and
/// must therefore be deterministic: no std hash collections, no ambient
/// time or randomness.
pub const SIM_CRITICAL_CRATES: &[&str] = &[
    "cluster",
    "codec",
    "core",
    "collectives",
    "ps",
    "glm",
    "data",
    "linalg",
    "serve",
    "net",
];

/// The one crate allowed to read wall-clock time and hold measurement
/// loops: host-side benchmarking is its entire purpose.
pub const TIMING_CRATE: &str = "bench";

impl FileContext {
    pub fn is_sim_critical(&self) -> bool {
        SIM_CRITICAL_CRATES.contains(&self.crate_name.as_str())
    }

    pub fn is_timing_crate(&self) -> bool {
        self.crate_name == TIMING_CRATE
    }
}

/// Classifies a workspace-relative path (forward slashes). Returns `None`
/// for files the analyzer does not police (vendored stubs, fixtures,
/// generated output) — the directory walker already skips those, but
/// classification is defensive about it too.
pub fn classify(rel_path: &str) -> Option<FileContext> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let first = rel_path.split('/').next().unwrap_or("");
    if matches!(first, "vendor" | "target" | "fixtures" | "bench_results") {
        return None;
    }

    let (crate_name, rest) = match rel_path.strip_prefix("crates/") {
        Some(tail) => {
            let mut it = tail.splitn(2, '/');
            let name = it.next().unwrap_or("");
            let rest = it.next()?;
            (name.to_string(), rest)
        }
        None => ("root".to_string(), rel_path),
    };
    if rest.split('/').any(|seg| seg == "fixtures") {
        return None;
    }

    let role = if rest.starts_with("tests/") {
        FileRole::TestCode
    } else if rest.starts_with("benches/") {
        FileRole::Bench
    } else if rest.starts_with("examples/") {
        FileRole::Example
    } else if rest == "src/main.rs" || rest.starts_with("src/bin/") {
        FileRole::Bin
    } else if rest.starts_with("src/") {
        FileRole::Lib
    } else {
        // build.rs and other root-level scripts: treat like binaries.
        FileRole::Bin
    };

    let is_crate_root = rest == "src/lib.rs" || rest == "src/main.rs";

    Some(FileContext {
        crate_name,
        role,
        is_crate_root,
        rel_path: rel_path.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_lib_file() {
        let ctx = classify("crates/glm/src/sgd.rs").unwrap();
        assert_eq!(ctx.crate_name, "glm");
        assert_eq!(ctx.role, FileRole::Lib);
        assert!(!ctx.is_crate_root);
        assert!(ctx.is_sim_critical());
    }

    #[test]
    fn crate_roots_are_flagged() {
        assert!(classify("crates/data/src/lib.rs").unwrap().is_crate_root);
        assert!(classify("crates/bench/src/main.rs").is_none_or(|c| c.is_crate_root));
    }

    #[test]
    fn bins_tests_examples_benches() {
        assert_eq!(
            classify("crates/bench/src/bin/calibrate.rs").unwrap().role,
            FileRole::Bin
        );
        assert_eq!(
            classify("tests/paper_claims.rs").unwrap().role,
            FileRole::TestCode
        );
        assert_eq!(
            classify("examples/quickstart.rs").map(|c| c.role),
            Some(FileRole::Example)
        );
        assert_eq!(
            classify("crates/bench/benches/linalg_ops.rs").unwrap().role,
            FileRole::Bench
        );
    }

    #[test]
    fn root_package_files() {
        let ctx = classify("src/lib.rs").unwrap();
        assert_eq!(ctx.crate_name, "root");
        assert!(ctx.is_crate_root);
        assert!(!ctx.is_sim_critical());
    }

    #[test]
    fn non_policed_paths_are_skipped() {
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("crates/lint/fixtures/firing/hash.rs").is_none());
        assert!(classify("target/debug/build/foo.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn timing_crate_is_bench() {
        assert!(classify("crates/bench/src/report.rs")
            .unwrap()
            .is_timing_crate());
        assert!(!classify("crates/core/src/driver.rs")
            .unwrap()
            .is_timing_crate());
    }
}
