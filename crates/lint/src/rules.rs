//! The rule set and the per-file / per-workspace rule passes.
//!
//! Every rule operates on the scanner's blanked code channel, so tokens
//! inside strings, chars, and comments never fire. Item-aware rules
//! (taint, lock ordering, hot-loop allocation) additionally consult the
//! parsed function items and the workspace call graph. Waivers are
//! ordinary comments of the form:
//!
//! ```text
//! // lint:allow(<rule>): <reason>
//! ```
//!
//! A waiver suppresses `<rule>` on its own line; a waiver that is the only
//! thing on its line suppresses the next line with code instead. Waivers
//! must name a real rule and carry a non-empty reason, and every waiver
//! must actually suppress something — otherwise the waiver itself is a
//! violation (`invalid_waiver`), so stale waivers cannot accumulate.

use crate::context::{FileContext, FileRole};
use crate::scanner::{self, Line};
use crate::FileUnit;

/// Identifier for one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// A nondeterminism source (default-hasher collection, wall clock,
    /// env read, OS thread identity) in — or transitively reachable
    /// from — sim-critical code. Diagnostics carry the call path from
    /// the nearest sim-critical public API to the sink.
    DeterminismTaint,
    /// `thread_rng` / `rand::random` / `from_entropy` outside the bench
    /// crate — all simulation randomness must flow through `SeedStream`.
    AmbientRand,
    /// Raw `thread::spawn` / `thread::scope` outside the allowlisted
    /// host-parallelism modules.
    ThreadSpawn,
    /// `.lock().unwrap()` / `.lock().expect(` on a mutex in library code.
    LockUnwrap,
    /// Two functions acquire the same pair of locks in opposite orders.
    LockOrder,
    /// Allocation (`Vec::new`, `vec!`, `.to_vec(`, `.clone(`, `.collect(`,
    /// `format!`) inside a `for`/`while`/`loop` body in a designated
    /// hot-path module.
    HotLoopAlloc,
    /// A private FNV-1a implementation outside `mlstar-codec`.
    DuplicateHashImpl,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafeMissing,
    /// `.unwrap()` / `.expect(` in non-test library code without a waiver.
    PanicInLib,
    /// Bare `==` / `!=` against float literals or float constants in
    /// non-test code.
    FloatEq,
    /// `print!` / `println!` in library code (binaries own stdout; the
    /// bench crate's reporting harness is exempt).
    PrintInLib,
    /// A waiver comment that is malformed, names an unknown rule, or
    /// suppresses nothing.
    InvalidWaiver,
    /// A writer/reader pair of one of the four wire formats whose
    /// normalized field-effect sequences diverge (order, width, loop
    /// guard, or missing field). Diagnostics carry both sequences
    /// side by side.
    CodecSymmetry,
    /// A `SeedStream`/`ChaCha`/`StdRng` sampling site reachable from a
    /// worker-side entry point (`net::worker` public fns or a
    /// `ComputeBackend::run_ops` impl) — all RNG must stay on the
    /// orchestrator. Diagnostics carry the call chain.
    RngPlacement,
}

impl RuleId {
    pub const ALL: &'static [RuleId] = &[
        RuleId::DeterminismTaint,
        RuleId::AmbientRand,
        RuleId::ThreadSpawn,
        RuleId::LockUnwrap,
        RuleId::LockOrder,
        RuleId::HotLoopAlloc,
        RuleId::DuplicateHashImpl,
        RuleId::ForbidUnsafeMissing,
        RuleId::PanicInLib,
        RuleId::FloatEq,
        RuleId::PrintInLib,
        RuleId::InvalidWaiver,
        RuleId::CodecSymmetry,
        RuleId::RngPlacement,
    ];

    /// The name used in diagnostics and in `lint:allow(<name>)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DeterminismTaint => "determinism_taint",
            RuleId::AmbientRand => "ambient_rand",
            RuleId::ThreadSpawn => "thread_spawn",
            RuleId::LockUnwrap => "lock_unwrap",
            RuleId::LockOrder => "lock_order",
            RuleId::HotLoopAlloc => "hot_loop_alloc",
            RuleId::DuplicateHashImpl => "duplicate_hash_impl",
            RuleId::ForbidUnsafeMissing => "forbid_unsafe_missing",
            RuleId::PanicInLib => "panic_in_lib",
            RuleId::FloatEq => "float_eq",
            RuleId::PrintInLib => "print_in_lib",
            RuleId::InvalidWaiver => "invalid_waiver",
            RuleId::CodecSymmetry => "codec_symmetry",
            RuleId::RngPlacement => "rng_placement",
        }
    }

    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description used by `--list-rules` and the generated
    /// DESIGN.md §9 rule table — the single source of truth for what each
    /// rule means.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::DeterminismTaint => {
                "nondeterminism sink (HashMap/clock/env/thread-id) in or reachable from sim-critical APIs, with call path"
            }
            RuleId::AmbientRand => "thread_rng/rand::random/from_entropy outside crates/bench",
            RuleId::ThreadSpawn => "thread::spawn/scope outside allowlisted host-parallelism modules",
            RuleId::LockUnwrap => ".lock().unwrap()/.expect( on a mutex in library code",
            RuleId::LockOrder => "two functions acquire the same lock pair in opposite orders",
            RuleId::HotLoopAlloc => "allocation inside a loop body in a hot-path module",
            RuleId::DuplicateHashImpl => "private FNV-1a implementation outside mlstar-codec",
            RuleId::ForbidUnsafeMissing => "crate root missing #![forbid(unsafe_code)]",
            RuleId::PanicInLib => ".unwrap()/.expect( in non-test library code (waivable)",
            RuleId::FloatEq => "bare ==/!= against float literals/constants outside tests",
            RuleId::PrintInLib => "print!/println! in library code outside crates/bench",
            RuleId::InvalidWaiver => "malformed, unknown, or stale lint:allow waiver",
            RuleId::CodecSymmetry => {
                "writer/reader effect sequences of a paired codec diverge (order/width/loop-guard/missing field)"
            }
            RuleId::RngPlacement => {
                "SeedStream/ChaCha/StdRng sampling reachable from worker-side code, with call chain"
            }
        }
    }

    /// Where the rule applies, for the generated DESIGN.md §9 table.
    pub fn scope(self) -> &'static str {
        match self {
            RuleId::DeterminismTaint => {
                "sim-critical lib/bin code, plus anything its public APIs reach"
            }
            RuleId::AmbientRand => "everywhere except crates/bench",
            RuleId::ThreadSpawn => "lib/bin code outside `core::local_pass`, `serve::engine`, `net::pool`",
            RuleId::LockUnwrap => "non-test library code",
            RuleId::LockOrder => "per-function first-acquisition sequences, workspace-wide",
            RuleId::HotLoopAlloc => {
                "loop bodies in `linalg`, `glm::{cd, gradient, lazy_l1, lbfgs, optimizer, path, sgd}`, `serve::engine`"
            }
            RuleId::DuplicateHashImpl => "every crate except `codec`",
            RuleId::ForbidUnsafeMissing => "every crate root",
            RuleId::PanicInLib => "non-test library code",
            RuleId::FloatEq => "non-test lib/bin code",
            RuleId::PrintInLib => "library code except crates/bench",
            RuleId::InvalidWaiver => "waiver comments",
            RuleId::CodecSymmetry => {
                "paired encode/decode fns in `codec`, `serve`, `core::checkpoint`, `net::protocol`, `collectives::wire`"
            }
            RuleId::RngPlacement => {
                "functions reachable from `net::worker` pub fns or `run_ops` impls"
            }
        }
    }
}

/// Renders the DESIGN.md §9 rule table from the registry, so the docs
/// cannot drift from the rule set (`tests/docs_sync.rs` pins the match).
pub fn design_rule_table() -> String {
    let mut out = String::from("| Rule | Scope | Enforces |\n|---|---|---|\n");
    for rule in RuleId::ALL {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            rule.name(),
            rule.scope(),
            rule.summary()
        ));
    }
    out
}

/// One diagnostic: a rule fired at a file:line. `path` carries the call
/// chain for path-aware rules (`determinism_taint`), rendered as
/// `crate::fn` display names ending with the sink token; it is empty for
/// purely line-level findings.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: RuleId,
    pub message: String,
    pub path: Vec<String>,
}

#[derive(Debug)]
pub(crate) struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub(crate) comment_line: usize,
    /// 1-based line the waiver suppresses.
    pub(crate) target_line: usize,
    pub(crate) rule: RuleId,
    pub(crate) used: bool,
}

/// Pushes a violation for `unit` unless a waiver covers it (marking the
/// waiver used either way, so it does not read as stale).
pub(crate) fn push(
    unit: &mut FileUnit,
    out: &mut Vec<Violation>,
    lineno: usize,
    rule: RuleId,
    message: String,
    path: Vec<String>,
) {
    if let Some(w) = unit
        .waivers
        .iter_mut()
        .find(|w| w.target_line == lineno && w.rule == rule)
    {
        w.used = true;
        return;
    }
    out.push(Violation {
        file: unit.ctx.rel_path.clone(),
        line: lineno,
        rule,
        message,
        path,
    });
}

/// Parses `lint:allow(rule): reason` waivers out of the comment channel.
/// Returns the usable waivers plus violations for malformed ones.
pub(crate) fn collect_waivers(ctx: &FileContext, lines: &[Line]) -> (Vec<Waiver>, Vec<Violation>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        // A waiver must be the whole comment (`// lint:allow(...): ...`);
        // prose that merely mentions the syntax mid-sentence is not parsed.
        let trimmed = line.comment.trim_start();
        let Some(tail) = trimmed.strip_prefix("lint:allow") else {
            continue;
        };
        let parsed = parse_waiver_tail(tail);
        match parsed {
            Ok(rule) => {
                // A comment-only line waives the next line that has code;
                // a trailing comment waives its own line.
                let own_line_has_code = !line.code.trim().is_empty();
                let target_line = if own_line_has_code {
                    lineno
                } else {
                    lines
                        .iter()
                        .enumerate()
                        .skip(idx + 1)
                        .find(|(_, l)| !l.code.trim().is_empty())
                        .map(|(j, _)| j + 1)
                        .unwrap_or(lineno)
                };
                waivers.push(Waiver {
                    comment_line: lineno,
                    target_line,
                    rule,
                    used: false,
                });
            }
            Err(why) => bad.push(Violation {
                file: ctx.rel_path.clone(),
                line: lineno,
                rule: RuleId::InvalidWaiver,
                message: why,
                path: Vec::new(),
            }),
        }
    }
    (waivers, bad)
}

/// Parses the `(rule): reason` tail of a waiver comment.
fn parse_waiver_tail(tail: &str) -> Result<RuleId, String> {
    let tail = tail.trim_start();
    let Some(rest) = tail.strip_prefix('(') else {
        return Err("malformed waiver: expected `lint:allow(<rule>): <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed waiver: missing `)` after rule name".to_string());
    };
    let name = rest[..close].trim();
    let Some(rule) = RuleId::from_name(name) else {
        let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.name()).collect();
        return Err(format!(
            "unknown rule `{name}` in waiver (known: {})",
            known.join(", ")
        ));
    };
    if rule == RuleId::InvalidWaiver || rule == RuleId::ForbidUnsafeMissing {
        return Err(format!("rule `{name}` cannot be waived"));
    }
    let after = &rest[close + 1..];
    let reason = after
        .trim_start()
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(
            "waiver has no reason: write `lint:allow(<rule>): <why this is safe>`".to_string(),
        );
    }
    Ok(rule)
}

// ---------------------------------------------------------------------------
// Per-file line-level passes
// ---------------------------------------------------------------------------

pub(crate) fn pass_forbid_unsafe(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter() {
        if !unit.ctx.is_crate_root {
            continue;
        }
        let has = unit.lines.iter().any(|l| {
            let compact: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
            compact.contains("#![forbid(unsafe_code)]")
        });
        if !has {
            out.push(Violation {
                file: unit.ctx.rel_path.clone(),
                line: 1,
                rule: RuleId::ForbidUnsafeMissing,
                message: "crate root must declare #![forbid(unsafe_code)]".to_string(),
                path: Vec::new(),
            });
        }
    }
}

pub(crate) fn pass_ambient_rand(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter_mut() {
        if unit.ctx.is_timing_crate() {
            continue;
        }
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            let code = unit.lines[idx].code.clone();
            for token in ["thread_rng", "from_entropy"] {
                if scanner::contains_word(&code, token) {
                    push(
                        unit,
                        out,
                        lineno,
                        RuleId::AmbientRand,
                        format!(
                            "`{token}` draws OS entropy: all randomness must flow through SeedStream"
                        ),
                        Vec::new(),
                    );
                }
            }
            if code.contains("rand::random") {
                push(
                    unit,
                    out,
                    lineno,
                    RuleId::AmbientRand,
                    "`rand::random` draws OS entropy: all randomness must flow through SeedStream"
                        .to_string(),
                    Vec::new(),
                );
            }
        }
    }
}

/// Modules allowed to touch raw threads: the host-parallelism shims
/// whose merge order is proven deterministic (fixed shard partitioning,
/// ordered joins) and the net backend's scoped worker pool (rank-ordered
/// spawn, join-all-before-return).
pub const THREAD_ALLOWLIST: &[(&str, &str)] =
    &[("core", "local_pass"), ("net", "pool"), ("serve", "engine")];

pub(crate) fn pass_thread_spawn(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter_mut() {
        if unit.ctx.is_timing_crate() || !matches!(unit.ctx.role, FileRole::Lib | FileRole::Bin) {
            continue;
        }
        let module = file_module(&unit.ctx);
        if THREAD_ALLOWLIST
            .iter()
            .any(|(c, m)| *c == unit.ctx.crate_name && *m == module)
        {
            continue;
        }
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            let code = unit.lines[idx].code.clone();
            for token in ["thread::spawn", "thread::scope"] {
                if code.contains(token) {
                    push(
                        unit,
                        out,
                        lineno,
                        RuleId::ThreadSpawn,
                        format!(
                            "`{token}` outside the allowlisted modules (core::local_pass, net::pool, serve::engine): raw threads bypass the deterministic merge order"
                        ),
                        Vec::new(),
                    );
                }
            }
        }
    }
}

pub(crate) fn pass_lock_unwrap(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter_mut() {
        if unit.ctx.role != FileRole::Lib {
            continue;
        }
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            let compact: String = unit.lines[idx]
                .code
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect();
            for pat in [".lock().unwrap()", ".lock().expect("] {
                if compact.contains(pat) {
                    push(
                        unit,
                        out,
                        lineno,
                        RuleId::LockUnwrap,
                        format!(
                            "`{pat}` in library code: a poisoned mutex is recoverable state, not a crash; match on the result or use `unwrap_or_else(|e| e.into_inner())`"
                        ),
                        Vec::new(),
                    );
                }
            }
        }
    }
}

pub(crate) fn pass_lock_order(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    // Acquisition sites of an ordered lock pair: (unit index, anchor line
    // of the second acquisition, function display name).
    type Sites = Vec<(usize, usize, String)>;
    let mut pairs: BTreeMap<(String, String), Sites> = BTreeMap::new();
    for (ui, unit) in units.iter().enumerate() {
        if unit.ctx.is_timing_crate() {
            continue;
        }
        for item in &unit.items {
            if item.in_test || item.locks.len() < 2 {
                continue;
            }
            // First-acquisition order of distinct locks.
            let mut seq: Vec<(String, usize)> = Vec::new();
            for l in &item.locks {
                let key = lock_key(&unit.ctx.crate_name, item, &l.receiver);
                if !seq.iter().any(|(k, _)| k == &key) {
                    seq.push((key, l.line));
                }
            }
            for i in 0..seq.len() {
                for j in (i + 1)..seq.len() {
                    pairs
                        .entry((seq[i].0.clone(), seq[j].0.clone()))
                        .or_default()
                        .push((ui, seq[j].1, item.display()));
                }
            }
        }
    }
    // A conflict exists when both (a, b) and (b, a) were observed.
    let mut planned: Vec<(usize, usize, String)> = Vec::new();
    for ((a, b), sites) in &pairs {
        if a >= b {
            continue;
        }
        let Some(rev_sites) = pairs.get(&(b.clone(), a.clone())) else {
            continue;
        };
        let fwd_fns: Vec<&str> = sites.iter().map(|(_, _, f)| f.as_str()).collect();
        let rev_fns: Vec<&str> = rev_sites.iter().map(|(_, _, f)| f.as_str()).collect();
        for (ui, line, f) in sites {
            planned.push((*ui, *line, format!(
                "inconsistent lock order: `{f}` acquires `{a}` then `{b}`, but {} the opposite way — pick one global order",
                join_fns(&rev_fns)
            )));
        }
        for (ui, line, f) in rev_sites {
            planned.push((*ui, *line, format!(
                "inconsistent lock order: `{f}` acquires `{b}` then `{a}`, but {} the opposite way — pick one global order",
                join_fns(&fwd_fns)
            )));
        }
    }
    for (ui, line, message) in planned {
        push(
            &mut units[ui],
            out,
            line,
            RuleId::LockOrder,
            message,
            Vec::new(),
        );
    }
}

fn join_fns(fns: &[&str]) -> String {
    let names: Vec<String> = fns.iter().map(|f| format!("`{f}`")).collect();
    format!(
        "{} acquire{} them",
        names.join(", "),
        if names.len() == 1 { "s" } else { "" }
    )
}

/// Canonical name for a lock receiver: `self`-rooted chains are qualified
/// by the impl type so distinct types' fields do not collide; everything
/// is crate-qualified because receivers are matched by name only.
fn lock_key(crate_name: &str, item: &crate::parse::FnItem, receiver: &str) -> String {
    if receiver == "self" || receiver.starts_with("self.") {
        let ty = if item.is_method() {
            item.name.split("::").next().unwrap_or("_")
        } else {
            "_"
        };
        format!("{crate_name}::{ty}{}", &receiver["self".len()..])
    } else {
        format!("{crate_name}::{receiver}")
    }
}

/// Hot-path modules policed for per-iteration allocation. An empty module
/// list means the whole crate.
pub const HOT_PATH_MODULES: &[(&str, &[&str])] = &[
    ("linalg", &[]),
    (
        "glm",
        &[
            "cd",
            "gradient",
            "lazy_l1",
            "lbfgs",
            "optimizer",
            "path",
            "sgd",
        ],
    ),
    ("serve", &["engine"]),
];

pub(crate) fn pass_hot_loop_alloc(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter_mut() {
        if unit.ctx.role != FileRole::Lib {
            continue;
        }
        let module = file_module(&unit.ctx);
        let hot = HOT_PATH_MODULES.iter().any(|(c, mods)| {
            *c == unit.ctx.crate_name && (mods.is_empty() || mods.contains(&module.as_str()))
        });
        if !hot {
            continue;
        }
        let items = unit.items.clone();
        for item in &items {
            if item.in_test {
                continue;
            }
            for &(start, end) in &item.loop_ranges {
                for lineno in start..=end {
                    let Some(line) = unit.lines.get(lineno - 1) else {
                        continue;
                    };
                    if line.in_test {
                        continue;
                    }
                    let code = line.code.clone();
                    for token in ["Vec::new", ".to_vec(", ".clone(", ".collect(", "format!"] {
                        if contains_alloc_token(&code, token) {
                            push(
                                unit,
                                out,
                                lineno,
                                RuleId::HotLoopAlloc,
                                format!(
                                    "`{token}` allocates inside a loop in hot-path fn `{}`: hoist the buffer out of the loop or reuse scratch space",
                                    item.display()
                                ),
                                Vec::new(),
                            );
                        }
                    }
                    if let Some(pos) = scanner::find_word(&code, "vec", 0) {
                        if code[pos + 3..].starts_with('!') {
                            push(
                                unit,
                                out,
                                lineno,
                                RuleId::HotLoopAlloc,
                                format!(
                                    "`vec!` allocates inside a loop in hot-path fn `{}`: hoist the buffer out of the loop or reuse scratch space",
                                    item.display()
                                ),
                                Vec::new(),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Substring match with a word boundary before the token's first
/// identifier character, so `SparseVec::new` does not match `Vec::new`.
fn contains_alloc_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        let pos = from + rel;
        let starts_ident = token
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if !starts_ident {
            return true;
        }
        let boundary = pos == 0
            || code[..pos]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_' && c != ':');
        if boundary {
            return true;
        }
        from = pos + token.len();
    }
    false
}

pub(crate) fn pass_duplicate_hash_impl(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter_mut() {
        if unit.ctx.crate_name == "codec" {
            continue;
        }
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            let code = unit.lines[idx].code.clone();
            let fn_impl = scanner::find_word(&code, "fnv1a", 0)
                .is_some_and(|pos| code[..pos].trim_end().ends_with("fn"));
            let compact: String = code
                .chars()
                .filter(|c| !c.is_whitespace() && *c != '_')
                .collect::<String>()
                .to_ascii_lowercase();
            let offset_const = compact.contains("0xcbf29ce484222325");
            if fn_impl || offset_const {
                push(
                    unit,
                    out,
                    lineno,
                    RuleId::DuplicateHashImpl,
                    "FNV-1a implementation outside mlstar-codec: use `mlstar_codec::fnv1a` / `mlstar_codec::Fnv1a` so every fingerprint shares one audited hash"
                        .to_string(),
                    Vec::new(),
                );
            }
        }
    }
}

pub(crate) fn pass_panic_in_lib(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter_mut() {
        if unit.ctx.role != FileRole::Lib {
            continue;
        }
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            // `.lock().unwrap()` / `.lock().expect(` belong to the
            // `lock_unwrap` rule with poison-specific guidance; strip them
            // so one line does not fire both rules.
            let compact: String = unit.lines[idx]
                .code
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect::<String>()
                .replace(".lock().unwrap()", ".lock()")
                .replace(".lock().expect(", ".lock()(");
            if compact.contains(".unwrap()") {
                push(
                    unit,
                    out,
                    lineno,
                    RuleId::PanicInLib,
                    "`.unwrap()` in library code: propagate an error or waive with `// lint:allow(panic_in_lib): <reason>`".to_string(),
                    Vec::new(),
                );
            }
            if compact.contains(".expect(") {
                push(
                    unit,
                    out,
                    lineno,
                    RuleId::PanicInLib,
                    "`.expect(` in library code: propagate an error or waive with `// lint:allow(panic_in_lib): <reason>`".to_string(),
                    Vec::new(),
                );
            }
        }
    }
}

pub(crate) fn pass_float_eq(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter_mut() {
        if !matches!(unit.ctx.role, FileRole::Lib | FileRole::Bin) {
            continue;
        }
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            let code = unit.lines[idx].code.clone();
            let bytes = code.as_bytes();
            let mut i = 0;
            while i + 1 < bytes.len() {
                let two = &bytes[i..i + 2];
                let is_eq = two == b"==";
                let is_ne = two == b"!=";
                if !(is_eq || is_ne) {
                    i += 1;
                    continue;
                }
                // Skip `<=`, `>=`, `===`-ish runs.
                let prev = if i > 0 { bytes[i - 1] } else { b' ' };
                let next = bytes.get(i + 2).copied().unwrap_or(b' ');
                if is_eq
                    && (prev == b'='
                        || prev == b'<'
                        || prev == b'>'
                        || prev == b'!'
                        || next == b'=')
                {
                    i += 2;
                    continue;
                }
                if is_ne && next == b'=' {
                    i += 2;
                    continue;
                }
                let left = &code[..i];
                let right = &code[i + 2..];
                if operand_is_floaty(left, true) || operand_is_floaty(right, false) {
                    let op = if is_eq { "==" } else { "!=" };
                    push(
                        unit,
                        out,
                        lineno,
                        RuleId::FloatEq,
                        format!(
                            "bare `{op}` against a float: compare with an epsilon or total ordering"
                        ),
                        Vec::new(),
                    );
                }
                i += 2;
            }
        }
    }
}

/// Heuristic float detection on one side of a comparison operator. Only
/// literal-ish operands fire (float literals, `f64::`/`f32::` constants,
/// `as f64` casts): the analyzer has no type information, so it flags the
/// comparisons it can prove rather than guessing at variables.
fn operand_is_floaty(text: &str, is_left: bool) -> bool {
    let token: String = if is_left {
        let t: String = text
            .trim_end()
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':'))
            .collect();
        t.chars().rev().collect()
    } else {
        let trimmed = text.trim_start();
        let trimmed = trimmed.strip_prefix('-').unwrap_or(trimmed).trim_start();
        trimmed
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':'))
            .collect()
    };
    if token.is_empty() {
        return false;
    }
    if token.starts_with("f64::") || token.starts_with("f32::") {
        return true;
    }
    if token.ends_with("f64") || token.ends_with("f32") {
        // `1.0f64`, `0f32` literal suffixes (and `x as f64` loses the cast
        // during token collection, leaving just `f64` — also floaty).
        if token == "f64" || token == "f32" {
            return true;
        }
        if token.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
    }
    is_float_literal(&token)
}

/// `1.0`, `0.5`, `3.` — digits, one dot, optional digits; rejects ranges
/// (`0..1`), tuple-field access (`x.0` never reaches here with a leading
/// digit), and plain integers.
fn is_float_literal(token: &str) -> bool {
    let mut seen_digit = false;
    let mut seen_dot = false;
    for c in token.chars() {
        match c {
            '0'..='9' => seen_digit = true,
            '_' => {}
            '.' => {
                if seen_dot || !seen_digit {
                    return false;
                }
                seen_dot = true;
            }
            'e' | 'E' | '+' | '-' => {
                // Exponent forms like 1e-3 count as floats if a dot or the
                // exponent marker follows digits.
                return seen_digit && token.contains(['e', 'E']);
            }
            _ => return false,
        }
    }
    seen_digit && seen_dot
}

pub(crate) fn pass_print_in_lib(units: &mut [FileUnit], out: &mut Vec<Violation>) {
    for unit in units.iter_mut() {
        if unit.ctx.role != FileRole::Lib || unit.ctx.is_timing_crate() {
            continue;
        }
        for idx in 0..unit.lines.len() {
            let lineno = idx + 1;
            if unit.lines[idx].in_test {
                continue;
            }
            let code = unit.lines[idx].code.clone();
            for token in ["println!", "print!"] {
                if scanner::find_word(&code, token, 0).is_some() {
                    push(
                        unit,
                        out,
                        lineno,
                        RuleId::PrintInLib,
                        format!(
                            "`{token}` in library code: stdout belongs to binaries; use a return value or eprintln! for diagnostics"
                        ),
                        Vec::new(),
                    );
                    break;
                }
            }
        }
    }
}

/// The top-level file module of a path: `crates/core/src/local_pass.rs` →
/// `local_pass`, `crates/glm/src/sgd.rs` → `sgd`, `src/lib.rs` → `lib`.
pub(crate) fn file_module(ctx: &FileContext) -> String {
    let rest = ctx
        .rel_path
        .strip_prefix("crates/")
        .and_then(|t| t.split_once('/').map(|x| x.1))
        .unwrap_or(&ctx.rel_path);
    let in_src = rest.strip_prefix("src/").unwrap_or(rest);
    in_src
        .trim_end_matches(".rs")
        .split('/')
        .next()
        .unwrap_or("")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_file;
    use crate::context::classify;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(&classify(path).expect("classifiable path"), src)
    }

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        check(path, src)
            .into_iter()
            .map(|v| v.rule.name())
            .collect()
    }

    const ROOT_OK: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn hashmap_fires_only_in_sim_critical_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_fired("crates/cluster/src/x.rs", src),
            vec!["determinism_taint"]
        );
        // `data` and `linalg` feed the simulation too, so they are held to
        // the same determinism bar.
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["determinism_taint"]
        );
        // Non-sim-critical crates only fire when the use is reachable from
        // a sim-critical public API, which a lone `use` never is.
        assert_eq!(
            rules_fired("crates/bench/src/x.rs", src),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules_fired("src/lib.rs", &format!("{ROOT_OK}{src}")),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn hashmap_in_test_region_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rules_fired("crates/glm/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_fires_outside_bench() {
        let src = "fn t() -> std::time::Instant { std::time::Instant::now() }\n";
        assert_eq!(
            rules_fired("crates/core/src/x.rs", src),
            vec!["determinism_taint"]
        );
        assert_eq!(
            rules_fired("crates/lint/src/x.rs", src),
            vec!["determinism_taint"]
        );
        assert!(rules_fired("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn taint_paths_span_call_chains() {
        let src = "\
pub fn api_entry(n: u64) -> u64 {\n    mid(n)\n}\n\
fn mid(n: u64) -> u64 {\n    leaf(n)\n}\n\
fn leaf(n: u64) -> u64 {\n    let m = std::collections::HashMap::new();\n    m.len() as u64 + n\n}\n";
        let v = check("crates/glm/src/tainty.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::DeterminismTaint);
        assert_eq!(
            v[0].path,
            vec!["glm::api_entry", "glm::mid", "glm::leaf", "HashMap"]
        );
        assert!(v[0]
            .message
            .contains("`glm::api_entry` → `glm::mid` → `glm::leaf`"));
    }

    #[test]
    fn env_and_thread_id_are_taint_sinks() {
        let src = "pub fn f() -> bool { std::env::var(\"X\").is_ok() }\n";
        assert_eq!(
            rules_fired("crates/core/src/x.rs", src),
            vec!["determinism_taint"]
        );
        let src2 = "pub fn f() -> std::thread::ThreadId { std::thread::current().id() }\n";
        assert_eq!(
            rules_fired("crates/core/src/x.rs", src2),
            vec!["determinism_taint"]
        );
        // Non-sim-critical crates may read the environment freely.
        assert!(rules_fired("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn ambient_rand_fires_outside_bench() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["ambient_rand"]
        );
        assert!(rules_fired("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_fires_outside_allowlist() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_fired("crates/glm/src/x.rs", src),
            vec!["thread_spawn"]
        );
        // Allowlisted modules and the bench crate are exempt.
        assert!(rules_fired("crates/core/src/local_pass.rs", src).is_empty());
        assert!(rules_fired("crates/serve/src/engine.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/x.rs", src).is_empty());
        // Test code may spawn threads.
        assert!(rules_fired("crates/glm/tests/t.rs", src).is_empty());
    }

    #[test]
    fn lock_unwrap_fires_instead_of_panic_in_lib() {
        let src = "fn f(m: &std::sync::Mutex<u32>) { let g = m.lock().unwrap(); }\n";
        assert_eq!(
            rules_fired("crates/serve/src/x.rs", src),
            vec!["lock_unwrap"]
        );
        let src2 = "fn f(m: &std::sync::Mutex<u32>) { let g = m.lock().expect(\"poisoned\"); }\n";
        assert_eq!(
            rules_fired("crates/serve/src/x.rs", src2),
            vec!["lock_unwrap"]
        );
    }

    #[test]
    fn lock_order_conflicts_fire_on_both_functions() {
        let src = "\
fn ab(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\n\
fn ba(s: &S) {\n    let b = s.beta.lock();\n    let a = s.alpha.lock();\n}\n";
        let v = check("crates/serve/src/x.rs", src);
        let fired: Vec<_> = v.iter().map(|v| (v.rule.name(), v.line)).collect();
        assert_eq!(fired, vec![("lock_order", 3), ("lock_order", 7)]);
        assert!(v[0].message.contains("`serve::ba`"));
    }

    #[test]
    fn consistent_lock_order_is_fine() {
        let src = "\
fn ab(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\n\
fn ab2(s: &S) {\n    let a = s.alpha.lock();\n    let b = s.beta.lock();\n}\n";
        assert!(rules_fired("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn hot_loop_alloc_fires_in_hot_modules_only() {
        let src = "\
pub fn kernel(rows: &[Vec<f64>]) -> f64 {\n    let mut acc = 0.0;\n    for r in rows {\n        let copy = r.to_vec();\n        acc += copy.len() as f64;\n    }\n    acc\n}\n";
        assert_eq!(
            rules_fired("crates/linalg/src/ops.rs", src),
            vec!["hot_loop_alloc"]
        );
        assert_eq!(
            rules_fired("crates/glm/src/sgd.rs", src),
            vec!["hot_loop_alloc"]
        );
        // Cold modules of the same crates are exempt.
        assert!(rules_fired("crates/glm/src/metrics.rs", src).is_empty());
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn hoisted_allocation_outside_the_loop_is_fine() {
        let src = "\
pub fn kernel(rows: &[Vec<f64>]) -> f64 {\n    let mut scratch = Vec::new();\n    let mut acc = 0.0;\n    for r in rows {\n        scratch.extend_from_slice(r);\n        acc += scratch.len() as f64;\n        scratch.clear();\n    }\n    acc\n}\n";
        assert!(rules_fired("crates/linalg/src/ops.rs", src).is_empty());
    }

    #[test]
    fn duplicate_hash_impl_fires_outside_codec() {
        let src = "fn fnv1a(bytes: &[u8]) -> u64 {\n    let mut h = 0xcbf2_9ce4_8422_2325u64;\n    h\n}\n";
        let fired = rules_fired("crates/data/src/x.rs", src);
        assert_eq!(fired, vec!["duplicate_hash_impl", "duplicate_hash_impl"]);
        assert!(rules_fired("crates/codec/src/x.rs", src).is_empty());
    }

    #[test]
    fn missing_forbid_unsafe_fires_on_crate_roots_only() {
        assert_eq!(
            rules_fired("crates/data/src/lib.rs", "pub fn f() {}\n"),
            vec!["forbid_unsafe_missing"]
        );
        assert!(rules_fired("crates/data/src/other.rs", "pub fn f() {}\n").is_empty());
        assert!(rules_fired("crates/data/src/lib.rs", ROOT_OK).is_empty());
    }

    #[test]
    fn forbid_unsafe_in_comment_does_not_count() {
        let src = "// #![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(
            rules_fired("crates/data/src/lib.rs", src),
            vec!["forbid_unsafe_missing"]
        );
    }

    #[test]
    fn unwrap_in_lib_fires_but_not_in_tests_or_bins() {
        let src = "pub fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["panic_in_lib"]
        );
        assert!(rules_fired("crates/bench/src/bin/b.rs", src).is_empty());
        assert!(rules_fired("tests/t.rs", src).is_empty());
    }

    #[test]
    fn expect_err_and_unwrap_or_do_not_fire() {
        let src = "pub fn f() { x.unwrap_or(0); y.unwrap_or_else(g); z.expect_err(\"m\"); }\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_doc_comment_is_fine() {
        let src = "/// let v = parse(s).unwrap();\npub fn parse() {}\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_on_same_line_suppresses() {
        let src =
            "pub fn f() { x.unwrap(); } // lint:allow(panic_in_lib): infallible by construction\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_on_preceding_line_suppresses_next_code_line() {
        let src =
            "// lint:allow(panic_in_lib): infallible by construction\npub fn f() { x.unwrap(); }\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "pub fn f() { x.unwrap(); } // lint:allow(determinism_taint): wrong rule\n";
        let fired = rules_fired("crates/data/src/x.rs", src);
        // The unwrap still fires, and the waiver is stale (suppresses nothing).
        assert!(fired.contains(&"panic_in_lib"));
        assert!(fired.contains(&"invalid_waiver"));
    }

    #[test]
    fn waiver_without_reason_is_invalid() {
        let src = "pub fn f() { x.unwrap(); } // lint:allow(panic_in_lib):\n";
        let fired = rules_fired("crates/data/src/x.rs", src);
        assert!(fired.contains(&"invalid_waiver"));
        assert!(
            fired.contains(&"panic_in_lib"),
            "a malformed waiver must not suppress"
        );
    }

    #[test]
    fn waiver_with_unknown_rule_is_invalid() {
        let src = "// lint:allow(no_such_rule): whatever\npub fn f() {}\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["invalid_waiver"]
        );
    }

    #[test]
    fn old_rule_names_in_waivers_are_invalid() {
        let src = "// lint:allow(std_hash): superseded name\npub fn f() {}\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["invalid_waiver"]
        );
    }

    #[test]
    fn prose_mentioning_waiver_syntax_is_not_a_waiver() {
        let src =
            "/// Waive with `// lint:allow(panic_in_lib): reason` if needed.\npub fn f() {}\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
        let src2 =
            "//! ```text\n//! // lint:allow(determinism_taint): example\n//! ```\npub fn g() {}\n";
        assert!(rules_fired("crates/data/src/x.rs", src2).is_empty());
    }

    #[test]
    fn stale_waiver_is_reported() {
        let src = "// lint:allow(panic_in_lib): nothing here panics\npub fn f() {}\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["invalid_waiver"]
        );
    }

    #[test]
    fn float_eq_literal_comparisons_fire() {
        assert_eq!(
            rules_fired("crates/data/src/x.rs", "let b = raw == 1.0;\n"),
            vec!["float_eq"]
        );
        assert_eq!(
            rules_fired("crates/data/src/x.rs", "if x != 0.5 { g(); }\n"),
            vec!["float_eq"]
        );
        assert_eq!(
            rules_fired("crates/data/src/x.rs", "if x == f64::INFINITY { g(); }\n"),
            vec!["float_eq"]
        );
    }

    #[test]
    fn float_eq_ignores_int_comparisons_ranges_and_le_ge() {
        assert!(rules_fired("crates/data/src/x.rs", "let b = n == 1;\n").is_empty());
        assert!(rules_fired("crates/data/src/x.rs", "for i in 0..10 { f(i); }\n").is_empty());
        assert!(rules_fired("crates/data/src/x.rs", "let b = x <= 1.0 && y >= 0.5;\n").is_empty());
        assert!(rules_fired("crates/data/src/x.rs", "let b = a.0 == b.0;\n").is_empty());
    }

    #[test]
    fn float_eq_allowed_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { assert!(x == 1.0); }\n}\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn print_in_lib_fires_except_bench_and_bins() {
        let src = "pub fn report() { println!(\"x\"); }\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["print_in_lib"]
        );
        assert!(rules_fired("crates/bench/src/x.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/bin/b.rs", src).is_empty());
    }

    #[test]
    fn eprintln_is_allowed() {
        let src = "pub fn warn() { eprintln!(\"x\"); }\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn tokens_inside_strings_do_not_fire() {
        let src = "pub const DOC: &str = \"HashMap Instant::now() .unwrap() thread_rng\";\n";
        assert!(rules_fired("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_carry_file_and_line() {
        let v = check(
            "crates/glm/src/x.rs",
            "fn a() {}\nuse std::collections::HashSet;\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].file, "crates/glm/src/x.rs");
    }

    #[test]
    fn file_module_extraction() {
        let ctx = classify("crates/core/src/local_pass.rs").unwrap();
        assert_eq!(file_module(&ctx), "local_pass");
        let root = classify("src/lib.rs").unwrap();
        assert_eq!(file_module(&root), "lib");
    }
}
