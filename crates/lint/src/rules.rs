//! The rule set and the per-file rule engine.
//!
//! Every rule operates on the scanner's blanked code channel, so tokens
//! inside strings, chars, and comments never fire. Waivers are ordinary
//! comments of the form:
//!
//! ```text
//! // lint:allow(<rule>): <reason>
//! ```
//!
//! A waiver suppresses `<rule>` on its own line; a waiver that is the only
//! thing on its line suppresses the next line with code instead. Waivers
//! must name a real rule and carry a non-empty reason, and every waiver
//! must actually suppress something — otherwise the waiver itself is a
//! violation (`invalid_waiver`), so stale waivers cannot accumulate.

use crate::context::{FileContext, FileRole};
use crate::scanner::{self, Line};

/// Identifier for one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in sim-critical crate code (iteration order is
    /// seeded per-process; BTree collections keep runs reproducible).
    StdHash,
    /// `Instant::now` / `SystemTime::now` outside the bench crate — the
    /// simulation has its own virtual clock.
    WallClock,
    /// `thread_rng` / `rand::random` / `from_entropy` outside the bench
    /// crate — all simulation randomness must flow through `SeedStream`.
    AmbientRand,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafeMissing,
    /// `.unwrap()` / `.expect(` in non-test library code without a waiver.
    PanicInLib,
    /// Bare `==` / `!=` against float literals or float constants in
    /// non-test code.
    FloatEq,
    /// `print!` / `println!` in library code (binaries own stdout; the
    /// bench crate's reporting harness is exempt).
    PrintInLib,
    /// A waiver comment that is malformed, names an unknown rule, or
    /// suppresses nothing.
    InvalidWaiver,
}

impl RuleId {
    pub const ALL: &'static [RuleId] = &[
        RuleId::StdHash,
        RuleId::WallClock,
        RuleId::AmbientRand,
        RuleId::ForbidUnsafeMissing,
        RuleId::PanicInLib,
        RuleId::FloatEq,
        RuleId::PrintInLib,
        RuleId::InvalidWaiver,
    ];

    /// The name used in diagnostics and in `lint:allow(<name>)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::StdHash => "std_hash",
            RuleId::WallClock => "wall_clock",
            RuleId::AmbientRand => "ambient_rand",
            RuleId::ForbidUnsafeMissing => "forbid_unsafe_missing",
            RuleId::PanicInLib => "panic_in_lib",
            RuleId::FloatEq => "float_eq",
            RuleId::PrintInLib => "print_in_lib",
            RuleId::InvalidWaiver => "invalid_waiver",
        }
    }

    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == name)
    }
}

/// One diagnostic: a rule fired at a file:line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: RuleId,
    pub message: String,
}

#[derive(Debug)]
struct Waiver {
    /// 1-based line the waiver comment sits on.
    comment_line: usize,
    /// 1-based line the waiver suppresses.
    target_line: usize,
    rule: RuleId,
    used: bool,
}

/// Runs every applicable rule over one file's source text.
pub fn check_file(ctx: &FileContext, source: &str) -> Vec<Violation> {
    let lines = scanner::scan(source);
    let mut out = Vec::new();

    let (mut waivers, mut malformed) = collect_waivers(ctx, &lines);
    out.append(&mut malformed);

    check_forbid_unsafe(ctx, &lines, &mut out);

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut push = |rule: RuleId, message: String, waivers: &mut Vec<Waiver>| {
            if let Some(w) = waivers
                .iter_mut()
                .find(|w| w.target_line == lineno && w.rule == rule)
            {
                w.used = true;
                return;
            }
            out.push(Violation {
                file: ctx.rel_path.clone(),
                line: lineno,
                rule,
                message,
            });
        };

        check_std_hash(ctx, line, lineno, &mut push, &mut waivers);
        check_wall_clock(ctx, line, lineno, &mut push, &mut waivers);
        check_ambient_rand(ctx, line, lineno, &mut push, &mut waivers);
        check_panic_in_lib(ctx, line, lineno, &mut push, &mut waivers);
        check_float_eq(ctx, line, lineno, &mut push, &mut waivers);
        check_print_in_lib(ctx, line, lineno, &mut push, &mut waivers);
    }

    for w in &waivers {
        if !w.used {
            out.push(Violation {
                file: ctx.rel_path.clone(),
                line: w.comment_line,
                rule: RuleId::InvalidWaiver,
                message: format!(
                    "waiver for `{}` suppresses nothing; remove the stale comment",
                    w.rule.name()
                ),
            });
        }
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

type Push<'a> = dyn FnMut(RuleId, String, &mut Vec<Waiver>) + 'a;

/// Parses `lint:allow(rule): reason` waivers out of the comment channel.
/// Returns the usable waivers plus violations for malformed ones.
fn collect_waivers(ctx: &FileContext, lines: &[Line]) -> (Vec<Waiver>, Vec<Violation>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        // A waiver must be the whole comment (`// lint:allow(...): ...`);
        // prose that merely mentions the syntax mid-sentence is not parsed.
        let trimmed = line.comment.trim_start();
        let Some(tail) = trimmed.strip_prefix("lint:allow") else {
            continue;
        };
        let parsed = parse_waiver_tail(tail);
        match parsed {
            Ok(rule) => {
                // A comment-only line waives the next line that has code;
                // a trailing comment waives its own line.
                let own_line_has_code = !line.code.trim().is_empty();
                let target_line = if own_line_has_code {
                    lineno
                } else {
                    lines
                        .iter()
                        .enumerate()
                        .skip(idx + 1)
                        .find(|(_, l)| !l.code.trim().is_empty())
                        .map(|(j, _)| j + 1)
                        .unwrap_or(lineno)
                };
                waivers.push(Waiver {
                    comment_line: lineno,
                    target_line,
                    rule,
                    used: false,
                });
            }
            Err(why) => bad.push(Violation {
                file: ctx.rel_path.clone(),
                line: lineno,
                rule: RuleId::InvalidWaiver,
                message: why,
            }),
        }
    }
    (waivers, bad)
}

/// Parses the `(rule): reason` tail of a waiver comment.
fn parse_waiver_tail(tail: &str) -> Result<RuleId, String> {
    let tail = tail.trim_start();
    let Some(rest) = tail.strip_prefix('(') else {
        return Err("malformed waiver: expected `lint:allow(<rule>): <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed waiver: missing `)` after rule name".to_string());
    };
    let name = rest[..close].trim();
    let Some(rule) = RuleId::from_name(name) else {
        let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.name()).collect();
        return Err(format!(
            "unknown rule `{name}` in waiver (known: {})",
            known.join(", ")
        ));
    };
    if rule == RuleId::InvalidWaiver || rule == RuleId::ForbidUnsafeMissing {
        return Err(format!("rule `{name}` cannot be waived"));
    }
    let after = &rest[close + 1..];
    let reason = after
        .trim_start()
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(
            "waiver has no reason: write `lint:allow(<rule>): <why this is safe>`".to_string(),
        );
    }
    Ok(rule)
}

fn check_forbid_unsafe(ctx: &FileContext, lines: &[Line], out: &mut Vec<Violation>) {
    if !ctx.is_crate_root {
        return;
    }
    let has = lines.iter().any(|l| {
        let compact: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        compact.contains("#![forbid(unsafe_code)]")
    });
    if !has {
        out.push(Violation {
            file: ctx.rel_path.clone(),
            line: 1,
            rule: RuleId::ForbidUnsafeMissing,
            message: "crate root must declare #![forbid(unsafe_code)]".to_string(),
        });
    }
}

fn check_std_hash(
    ctx: &FileContext,
    line: &Line,
    _lineno: usize,
    push: &mut Push,
    waivers: &mut Vec<Waiver>,
) {
    if !ctx.is_sim_critical() || line.in_test {
        return;
    }
    if !matches!(ctx.role, FileRole::Lib | FileRole::Bin) {
        return;
    }
    for token in ["HashMap", "HashSet"] {
        if scanner::contains_word(&line.code, token) {
            push(
                RuleId::StdHash,
                format!(
                    "`{token}` in sim-critical crate `{}`: iteration order is seeded per-process; use BTreeMap/BTreeSet",
                    ctx.crate_name
                ),
                waivers,
            );
        }
    }
}

fn check_wall_clock(
    ctx: &FileContext,
    line: &Line,
    _lineno: usize,
    push: &mut Push,
    waivers: &mut Vec<Waiver>,
) {
    if ctx.is_timing_crate() || line.in_test {
        return;
    }
    for token in ["Instant::now", "SystemTime::now"] {
        if line.code.contains(token) {
            push(
                RuleId::WallClock,
                format!("`{token}` outside crates/bench: simulated time must come from the virtual clock"),
                waivers,
            );
        }
    }
}

fn check_ambient_rand(
    ctx: &FileContext,
    line: &Line,
    _lineno: usize,
    push: &mut Push,
    waivers: &mut Vec<Waiver>,
) {
    if ctx.is_timing_crate() || line.in_test {
        return;
    }
    for token in ["thread_rng", "from_entropy"] {
        if scanner::contains_word(&line.code, token) {
            push(
                RuleId::AmbientRand,
                format!("`{token}` draws OS entropy: all randomness must flow through SeedStream"),
                waivers,
            );
        }
    }
    if line.code.contains("rand::random") {
        push(
            RuleId::AmbientRand,
            "`rand::random` draws OS entropy: all randomness must flow through SeedStream"
                .to_string(),
            waivers,
        );
    }
}

fn check_panic_in_lib(
    ctx: &FileContext,
    line: &Line,
    _lineno: usize,
    push: &mut Push,
    waivers: &mut Vec<Waiver>,
) {
    if ctx.role != FileRole::Lib || line.in_test {
        return;
    }
    if line.code.contains(".unwrap()") {
        push(
            RuleId::PanicInLib,
            "`.unwrap()` in library code: propagate an error or waive with `// lint:allow(panic_in_lib): <reason>`".to_string(),
            waivers,
        );
    }
    if line.code.contains(".expect(") {
        push(
            RuleId::PanicInLib,
            "`.expect(` in library code: propagate an error or waive with `// lint:allow(panic_in_lib): <reason>`".to_string(),
            waivers,
        );
    }
}

fn check_float_eq(
    ctx: &FileContext,
    line: &Line,
    _lineno: usize,
    push: &mut Push,
    waivers: &mut Vec<Waiver>,
) {
    if line.in_test || !matches!(ctx.role, FileRole::Lib | FileRole::Bin) {
        return;
    }
    let bytes = line.code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        let is_eq = two == b"==";
        let is_ne = two == b"!=";
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Skip `<=`, `>=`, `===`-ish runs, and `x == =` never parses anyway.
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = bytes.get(i + 2).copied().unwrap_or(b' ');
        if is_eq && (prev == b'=' || prev == b'<' || prev == b'>' || prev == b'!' || next == b'=') {
            i += 2;
            continue;
        }
        if is_ne && next == b'=' {
            i += 2;
            continue;
        }
        let left = &line.code[..i];
        let right = &line.code[i + 2..];
        if operand_is_floaty(left, true) || operand_is_floaty(right, false) {
            let op = if is_eq { "==" } else { "!=" };
            push(
                RuleId::FloatEq,
                format!("bare `{op}` against a float: compare with an epsilon or total ordering"),
                waivers,
            );
        }
        i += 2;
    }
}

/// Heuristic float detection on one side of a comparison operator. Only
/// literal-ish operands fire (float literals, `f64::`/`f32::` constants,
/// `as f64` casts): the analyzer has no type information, so it flags the
/// comparisons it can prove rather than guessing at variables.
fn operand_is_floaty(text: &str, is_left: bool) -> bool {
    let token: String = if is_left {
        let t: String = text
            .trim_end()
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':'))
            .collect();
        t.chars().rev().collect()
    } else {
        let trimmed = text.trim_start();
        let trimmed = trimmed.strip_prefix('-').unwrap_or(trimmed).trim_start();
        trimmed
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':'))
            .collect()
    };
    if token.is_empty() {
        return false;
    }
    if token.starts_with("f64::") || token.starts_with("f32::") {
        return true;
    }
    if token.ends_with("f64") || token.ends_with("f32") {
        // `1.0f64`, `0f32` literal suffixes (and `x as f64` loses the cast
        // during token collection, leaving just `f64` — also floaty).
        if token == "f64" || token == "f32" {
            return true;
        }
        if token.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
    }
    is_float_literal(&token)
}

/// `1.0`, `0.5`, `3.` — digits, one dot, optional digits; rejects ranges
/// (`0..1`), tuple-field access (`x.0` never reaches here with a leading
/// digit), and plain integers.
fn is_float_literal(token: &str) -> bool {
    let mut seen_digit = false;
    let mut seen_dot = false;
    for c in token.chars() {
        match c {
            '0'..='9' => seen_digit = true,
            '_' => {}
            '.' => {
                if seen_dot || !seen_digit {
                    return false;
                }
                seen_dot = true;
            }
            'e' | 'E' | '+' | '-' => {
                // Exponent forms like 1e-3 count as floats if a dot or the
                // exponent marker follows digits.
                return seen_digit && token.contains(['e', 'E']);
            }
            _ => return false,
        }
    }
    seen_digit && seen_dot
}

fn check_print_in_lib(
    ctx: &FileContext,
    line: &Line,
    _lineno: usize,
    push: &mut Push,
    waivers: &mut Vec<Waiver>,
) {
    if ctx.role != FileRole::Lib || line.in_test || ctx.is_timing_crate() {
        return;
    }
    for token in ["println!", "print!"] {
        if scanner::find_word(&line.code, token, 0).is_some() {
            push(
                RuleId::PrintInLib,
                format!("`{token}` in library code: stdout belongs to binaries; use a return value or eprintln! for diagnostics"),
                waivers,
            );
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::classify;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(&classify(path).expect("classifiable path"), src)
    }

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        check(path, src)
            .into_iter()
            .map(|v| v.rule.name())
            .collect()
    }

    const ROOT_OK: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn hashmap_fires_only_in_sim_critical_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_fired("crates/cluster/src/x.rs", src),
            vec!["std_hash"]
        );
        // `data` and `linalg` feed the simulation too, so they are held to
        // the same determinism bar.
        assert_eq!(rules_fired("crates/data/src/x.rs", src), vec!["std_hash"]);
        assert_eq!(rules_fired("crates/linalg/src/x.rs", src), vec!["std_hash"]);
        // The host-side bench harness is exempt.
        assert_eq!(
            rules_fired("crates/bench/src/x.rs", src),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn hashmap_in_test_region_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rules_fired("crates/glm/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_fires_outside_bench() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(rules_fired("crates/core/src/x.rs", src), vec!["wall_clock"]);
        assert!(rules_fired("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn ambient_rand_fires_outside_bench() {
        let src = "let mut rng = rand::thread_rng();\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["ambient_rand"]
        );
        assert!(rules_fired("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn missing_forbid_unsafe_fires_on_crate_roots_only() {
        assert_eq!(
            rules_fired("crates/data/src/lib.rs", "pub fn f() {}\n"),
            vec!["forbid_unsafe_missing"]
        );
        assert!(rules_fired("crates/data/src/other.rs", "pub fn f() {}\n").is_empty());
        assert!(rules_fired("crates/data/src/lib.rs", ROOT_OK).is_empty());
    }

    #[test]
    fn forbid_unsafe_in_comment_does_not_count() {
        let src = "// #![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(
            rules_fired("crates/data/src/lib.rs", src),
            vec!["forbid_unsafe_missing"]
        );
    }

    #[test]
    fn unwrap_in_lib_fires_but_not_in_tests_or_bins() {
        let src = "pub fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["panic_in_lib"]
        );
        assert!(rules_fired("crates/bench/src/bin/b.rs", src).is_empty());
        assert!(rules_fired("tests/t.rs", src).is_empty());
    }

    #[test]
    fn expect_err_and_unwrap_or_do_not_fire() {
        let src = "pub fn f() { x.unwrap_or(0); y.unwrap_or_else(g); z.expect_err(\"m\"); }\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_doc_comment_is_fine() {
        let src = "/// let v = parse(s).unwrap();\npub fn parse() {}\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_on_same_line_suppresses() {
        let src =
            "pub fn f() { x.unwrap(); } // lint:allow(panic_in_lib): infallible by construction\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_on_preceding_line_suppresses_next_code_line() {
        let src =
            "// lint:allow(panic_in_lib): infallible by construction\npub fn f() { x.unwrap(); }\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "pub fn f() { x.unwrap(); } // lint:allow(std_hash): wrong rule\n";
        let fired = rules_fired("crates/data/src/x.rs", src);
        // The unwrap still fires, and the waiver is stale (suppresses nothing).
        assert!(fired.contains(&"panic_in_lib"));
        assert!(fired.contains(&"invalid_waiver"));
    }

    #[test]
    fn waiver_without_reason_is_invalid() {
        let src = "pub fn f() { x.unwrap(); } // lint:allow(panic_in_lib):\n";
        let fired = rules_fired("crates/data/src/x.rs", src);
        assert!(fired.contains(&"invalid_waiver"));
        assert!(
            fired.contains(&"panic_in_lib"),
            "a malformed waiver must not suppress"
        );
    }

    #[test]
    fn waiver_with_unknown_rule_is_invalid() {
        let src = "// lint:allow(no_such_rule): whatever\npub fn f() {}\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["invalid_waiver"]
        );
    }

    #[test]
    fn prose_mentioning_waiver_syntax_is_not_a_waiver() {
        let src =
            "/// Waive with `// lint:allow(panic_in_lib): reason` if needed.\npub fn f() {}\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
        let src2 = "//! ```text\n//! // lint:allow(std_hash): example\n//! ```\npub fn g() {}\n";
        assert!(rules_fired("crates/data/src/x.rs", src2).is_empty());
    }

    #[test]
    fn stale_waiver_is_reported() {
        let src = "// lint:allow(panic_in_lib): nothing here panics\npub fn f() {}\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["invalid_waiver"]
        );
    }

    #[test]
    fn float_eq_literal_comparisons_fire() {
        assert_eq!(
            rules_fired("crates/data/src/x.rs", "let b = raw == 1.0;\n"),
            vec!["float_eq"]
        );
        assert_eq!(
            rules_fired("crates/data/src/x.rs", "if x != 0.5 { g(); }\n"),
            vec!["float_eq"]
        );
        assert_eq!(
            rules_fired("crates/data/src/x.rs", "if x == f64::INFINITY { g(); }\n"),
            vec!["float_eq"]
        );
    }

    #[test]
    fn float_eq_ignores_int_comparisons_ranges_and_le_ge() {
        assert!(rules_fired("crates/data/src/x.rs", "let b = n == 1;\n").is_empty());
        assert!(rules_fired("crates/data/src/x.rs", "for i in 0..10 { f(i); }\n").is_empty());
        assert!(rules_fired("crates/data/src/x.rs", "let b = x <= 1.0 && y >= 0.5;\n").is_empty());
        assert!(rules_fired("crates/data/src/x.rs", "let b = a.0 == b.0;\n").is_empty());
    }

    #[test]
    fn float_eq_allowed_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { assert!(x == 1.0); }\n}\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn print_in_lib_fires_except_bench_and_bins() {
        let src = "pub fn report() { println!(\"x\"); }\n";
        assert_eq!(
            rules_fired("crates/data/src/x.rs", src),
            vec!["print_in_lib"]
        );
        assert!(rules_fired("crates/bench/src/x.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/bin/b.rs", src).is_empty());
    }

    #[test]
    fn eprintln_is_allowed() {
        let src = "pub fn warn() { eprintln!(\"x\"); }\n";
        assert!(rules_fired("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn tokens_inside_strings_do_not_fire() {
        let src = "pub const DOC: &str = \"HashMap Instant::now() .unwrap() thread_rng\";\n";
        assert!(rules_fired("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_carry_file_and_line() {
        let v = check(
            "crates/glm/src/x.rs",
            "fn a() {}\nuse std::collections::HashSet;\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].file, "crates/glm/src/x.rs");
    }
}
