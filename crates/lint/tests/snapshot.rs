//! Golden-diagnostic snapshot: the exact rule, call path, and file:line
//! of every finding over the firing corpus is pinned in
//! `fixtures/expected_diagnostics.txt`. Any analyzer change that moves a
//! line, rewrites a message, or drops a path shows up as a readable diff.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! MLSTAR_UPDATE_SNAPSHOTS=1 cargo test -p mlstar-lint --test snapshot
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use mlstar_lint::{check_file, classify, report};

fn render_corpus() -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("firing");
    let mut files: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();

    let mut out = String::new();
    for file in files {
        let text = fs::read_to_string(&file).expect("fixture readable");
        let declared = text
            .lines()
            .find_map(|l| l.strip_prefix("//@ path:"))
            .unwrap_or_else(|| panic!("{file:?} missing `//@ path:` header"))
            .trim()
            .to_string();
        let ctx = classify(&declared).expect("policed path");
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        writeln!(out, "# {name} (as {declared})").unwrap();
        for v in check_file(&ctx, &text) {
            writeln!(out, "{}", report::human_line(&v)).unwrap();
        }
        out.push('\n');
    }
    out
}

#[test]
fn firing_corpus_diagnostics_match_the_committed_snapshot() {
    let snapshot_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("expected_diagnostics.txt");
    let actual = render_corpus();

    if std::env::var_os("MLSTAR_UPDATE_SNAPSHOTS").is_some() {
        fs::write(&snapshot_path, &actual).expect("write snapshot");
        return;
    }

    let expected = fs::read_to_string(&snapshot_path).unwrap_or_else(|e| {
        panic!(
            "read {snapshot_path:?}: {e}\n\
             (regenerate with MLSTAR_UPDATE_SNAPSHOTS=1)"
        )
    });
    assert_eq!(
        actual, expected,
        "fixture diagnostics drifted from fixtures/expected_diagnostics.txt;\n\
         if the change is intentional, regenerate with\n\
         MLSTAR_UPDATE_SNAPSHOTS=1 cargo test -p mlstar-lint --test snapshot"
    );
}

#[test]
fn snapshot_pins_a_multi_hop_taint_path() {
    let rendered = render_corpus();
    let chain = "`glm::api_entry` → `glm::fold_stats` → `glm::bucket_keys` → `HashMap`";
    assert!(
        rendered.contains(chain),
        "expected the three-hop taint chain {chain:?} in:\n{rendered}"
    );
}

/// Diagnostics must come out sorted (file → line → rule → message) from
/// every entry point, so snapshot diffs and CI logs never churn from
/// emit-order drift.
#[test]
fn diagnostics_are_emitted_in_sorted_order() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("firing");
    let mut checked = 0usize;
    for entry in fs::read_dir(&dir).expect("firing dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "rs") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("fixture readable");
        let declared = text
            .lines()
            .find_map(|l| l.strip_prefix("//@ path:"))
            .expect("declared path")
            .trim()
            .to_string();
        let ctx = classify(&declared).expect("policed path");
        let keys: Vec<_> = check_file(&ctx, &text)
            .into_iter()
            .map(|v| (v.file, v.line, v.rule, v.message))
            .collect();
        checked += keys.len();
        for w in keys.windows(2) {
            assert!(
                w[0] <= w[1],
                "unsorted diagnostics in {path:?}: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
    }
    assert!(
        checked > 10,
        "only {checked} diagnostics checked — corpus missing?"
    );
}

/// The multi-hop rng_placement chain and the codec sequence diff are
/// pinned the same way as the taint chain: the new passes must keep
/// reporting *why*, not just *where*.
#[test]
fn snapshot_pins_dataflow_and_rng_diagnostics() {
    let rendered = render_corpus();
    let rng_chain = "`net::run_worker` → `net::refill_batch` → `net::draw_row` → `SeedStream`";
    assert!(
        rendered.contains(rng_chain),
        "expected the worker RNG chain {rng_chain:?} in:\n{rendered}"
    );
    assert!(
        rendered.contains("writer: [u32 u64] reader: [u64 u32]"),
        "expected the swapped-field sequence diff in:\n{rendered}"
    );
}
