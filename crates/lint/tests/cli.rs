//! End-to-end CLI tests: exit codes, --json output, --help, --list-rules.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn lint_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mlstar-lint")
}

fn workspace_root() -> PathBuf {
    mlstar_lint::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("inside workspace")
}

/// Builds a throwaway mini-workspace containing one violating file.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn violating(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("mlstar-lint-cli-{}-{tag}", std::process::id()));
        let src_dir = root.join("crates/cluster/src");
        fs::create_dir_all(&src_dir).expect("mkdir temp workspace");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
        fs::write(
            src_dir.join("demo.rs"),
            "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n",
        )
        .expect("write violating source");
        TempWorkspace { root }
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn clean_workspace_exits_zero() {
    let out = Command::new(lint_bin())
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run mlstar-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "expected exit 0 on the real workspace\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stderr.contains("0 violation(s)"), "stderr was: {stderr}");
}

#[test]
fn violations_exit_nonzero_with_file_line_diagnostics() {
    let tmp = TempWorkspace::violating("human");
    let out = Command::new(lint_bin())
        .arg("--root")
        .arg(&tmp.root)
        .output()
        .expect("run mlstar-lint");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/cluster/src/demo.rs:1: [determinism_taint]"),
        "stdout was: {stdout}"
    );
}

#[test]
fn json_mode_emits_machine_readable_report() {
    let tmp = TempWorkspace::violating("json");
    let out = Command::new(lint_bin())
        .arg("--json")
        .arg("--root")
        .arg(&tmp.root)
        .output()
        .expect("run mlstar-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "stdout was: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"determinism_taint\""),
        "stdout was: {stdout}"
    );
    assert!(
        stdout.contains("\"file\": \"crates/cluster/src/demo.rs\""),
        "stdout was: {stdout}"
    );
    assert!(
        stdout.contains("\"files_scanned\": 1"),
        "stdout was: {stdout}"
    );
}

#[test]
fn help_and_list_rules_exit_zero() {
    for flag in ["--help", "--list-rules"] {
        let out = Command::new(lint_bin())
            .arg(flag)
            .output()
            .expect("run mlstar-lint");
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let needle = if flag == "--help" {
            "USAGE"
        } else {
            "determinism_taint"
        };
        assert!(stdout.contains(needle), "{flag} stdout was: {stdout}");
    }
}

#[test]
fn unknown_flag_exits_two() {
    let out = Command::new(lint_bin())
        .arg("--bogus")
        .output()
        .expect("run mlstar-lint");
    assert_eq!(out.status.code(), Some(2));
}

/// `--list-rules` is generated from the registry, so every registered
/// rule id must appear — a new RuleId variant cannot ship half-wired.
#[test]
fn list_rules_covers_every_registered_rule() {
    let out = Command::new(lint_bin())
        .arg("--list-rules")
        .output()
        .expect("run mlstar-lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in mlstar_lint::RuleId::ALL {
        assert!(
            stdout
                .lines()
                .any(|l| l.split_whitespace().next() == Some(rule.name())),
            "rule `{}` missing from --list-rules output:\n{stdout}",
            rule.name()
        );
    }
}
