//! Runs the analyzer over the fixture corpus. Every fixture declares the
//! path it pretends to live at and the distinct set of rules it expects
//! to fire:
//!
//! ```text
//! //@ path: crates/cluster/src/demo.rs
//! //@ expect: std_hash, panic_in_lib     (empty for clean fixtures)
//! ```

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use mlstar_lint::{check_file, classify};

struct Fixture {
    file: PathBuf,
    declared_path: String,
    expected: BTreeSet<String>,
}

fn parse_fixture(file: &Path) -> Fixture {
    let text = fs::read_to_string(file).unwrap_or_else(|e| panic!("read {file:?}: {e}"));
    let mut declared_path = None;
    let mut expected = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("//@ path:") {
            declared_path = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("//@ expect:") {
            expected = Some(
                rest.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect::<BTreeSet<_>>(),
            );
        }
    }
    Fixture {
        file: file.to_path_buf(),
        declared_path: declared_path
            .unwrap_or_else(|| panic!("{file:?} missing `//@ path:` header")),
        expected: expected.unwrap_or_else(|| panic!("{file:?} missing `//@ expect:` header")),
    }
}

fn fixtures_in(subdir: &str) -> Vec<Fixture> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(subdir);
    let mut out: Vec<Fixture> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .map(|p| parse_fixture(&p))
        .collect();
    out.sort_by(|a, b| a.file.cmp(&b.file));
    assert!(!out.is_empty(), "no fixtures found in {dir:?}");
    out
}

fn fired_rules(fx: &Fixture) -> BTreeSet<String> {
    let ctx = classify(&fx.declared_path).unwrap_or_else(|| {
        panic!(
            "{:?}: declared path {:?} is not policed",
            fx.file, fx.declared_path
        )
    });
    let source = fs::read_to_string(&fx.file).expect("fixture readable");
    check_file(&ctx, &source)
        .into_iter()
        .map(|v| v.rule.name().to_string())
        .collect()
}

#[test]
fn firing_fixtures_fire_exactly_their_declared_rules() {
    for fx in fixtures_in("firing") {
        assert!(
            !fx.expected.is_empty(),
            "{:?} declares no expected rules",
            fx.file
        );
        let fired = fired_rules(&fx);
        assert_eq!(
            fired, fx.expected,
            "{:?} (as {}) fired {:?}, expected {:?}",
            fx.file, fx.declared_path, fired, fx.expected
        );
    }
}

#[test]
fn clean_fixtures_fire_nothing() {
    for fx in fixtures_in("clean") {
        assert!(
            fx.expected.is_empty(),
            "{:?} is in clean/ but expects rules",
            fx.file
        );
        let fired = fired_rules(&fx);
        assert!(
            fired.is_empty(),
            "{:?} (as {}) unexpectedly fired {:?}",
            fx.file,
            fx.declared_path,
            fired
        );
    }
}

#[test]
fn every_rule_has_a_firing_fixture() {
    let mut covered = BTreeSet::new();
    for fx in fixtures_in("firing") {
        covered.extend(fx.expected.iter().cloned());
    }
    for rule in mlstar_lint::RuleId::ALL {
        assert!(
            covered.contains(rule.name()),
            "rule `{}` has no firing fixture",
            rule.name()
        );
    }
}

#[test]
fn violations_point_at_real_lines() {
    for fx in fixtures_in("firing") {
        let ctx = classify(&fx.declared_path).expect("policed path");
        let source = fs::read_to_string(&fx.file).expect("fixture readable");
        let line_count = source.lines().count();
        for v in check_file(&ctx, &source) {
            assert!(
                v.line >= 1 && v.line <= line_count,
                "{:?}: line {} out of range",
                fx.file,
                v.line
            );
            assert!(!v.message.is_empty());
            assert_eq!(v.file, fx.declared_path);
        }
    }
}
