//! Docs stay generated, not transcribed: the DESIGN.md §9 rule table must
//! match `rules::design_rule_table()` byte-for-byte, so adding a rule
//! without regenerating the docs fails the build instead of drifting.

use std::fs;
use std::path::Path;

use mlstar_lint::{rules, walk, RuleId};

fn design_md() -> String {
    let root = walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable")
}

#[test]
fn design_rule_table_matches_the_registry() {
    let design = design_md();
    let table = rules::design_rule_table();
    assert!(
        design.contains(&table),
        "DESIGN.md §9 rule table drifted from the registry.\n\
         Replace the table with the exact output of\n\
         `mlstar_lint::rules::design_rule_table()`:\n\n{table}"
    );
}

#[test]
fn every_rule_is_documented_in_design_md() {
    let design = design_md();
    for rule in RuleId::ALL {
        assert!(
            design.contains(&format!("`{}`", rule.name())),
            "rule `{}` is not mentioned anywhere in DESIGN.md",
            rule.name()
        );
    }
}
