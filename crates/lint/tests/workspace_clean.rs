//! The tier-1 gate: the real workspace must carry zero lint violations.
//! This test runs on every `cargo test`, so a stray `HashMap`, ambient
//! clock read, or unwaived library panic fails the build, not just CI.

use std::path::Path;

use mlstar_lint::{scan_workspace, walk};

#[test]
fn workspace_has_zero_violations() {
    let root = walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let scan = scan_workspace(&root).expect("workspace is readable");
    assert!(
        scan.files_scanned > 20,
        "suspiciously few files scanned ({}) — walker broke?",
        scan.files_scanned
    );
    let rendered: Vec<String> = scan
        .violations
        .iter()
        .map(mlstar_lint::report::human_line)
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}

/// The perf budget: the dataflow pass (and everything else) must keep
/// `cargo lint` interactive. Counters go to stderr so a budget failure
/// comes with context.
#[test]
fn self_lint_fits_the_perf_budget() {
    let root = walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let t0 = std::time::Instant::now();
    let scan = scan_workspace(&root).expect("workspace is readable");
    let elapsed = t0.elapsed();
    eprintln!(
        "self-lint: {} file(s), {} fn(s), {} edge(s) in {:?}",
        scan.files_scanned, scan.functions, scan.edges, elapsed
    );
    assert!(
        scan.functions > 100,
        "parser found only {} fns",
        scan.functions
    );
    assert!(scan.edges > 100, "call graph has only {} edges", scan.edges);
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "full workspace self-lint took {elapsed:?} (budget 2s)"
    );
}
