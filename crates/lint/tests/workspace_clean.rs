//! The tier-1 gate: the real workspace must carry zero lint violations.
//! This test runs on every `cargo test`, so a stray `HashMap`, ambient
//! clock read, or unwaived library panic fails the build, not just CI.

use std::path::Path;

use mlstar_lint::{scan_workspace, walk};

#[test]
fn workspace_has_zero_violations() {
    let root = walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let scan = scan_workspace(&root).expect("workspace is readable");
    assert!(
        scan.files_scanned > 20,
        "suspiciously few files scanned ({}) — walker broke?",
        scan.files_scanned
    );
    let rendered: Vec<String> = scan
        .violations
        .iter()
        .map(mlstar_lint::report::human_line)
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}
