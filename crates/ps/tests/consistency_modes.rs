//! Integration tests of the PS engine across consistency protocols,
//! including fully asynchronous (ASP) execution.

use mlstar_linalg::DenseVector;
use mlstar_ps::{Aggregation, Consistency, PsConfig, PsEngine, WorkerLogic, WorkerStep};
use mlstar_sim::{ClusterSpec, CostModel, NetworkSpec, NodeSpec, SimDuration, StragglerModel};

/// Logic that pushes +1 on coordinate `worker` and records the model
/// versions it observed (for staleness measurements).
struct Recorder {
    dim: usize,
    observed_sums: Vec<f64>,
}

impl WorkerLogic for Recorder {
    fn compute(&mut self, worker: usize, _clock: u64, model: &DenseVector) -> WorkerStep {
        self.observed_sums
            .push((0..self.dim).map(|i| model.get(i)).sum());
        let mut payload = DenseVector::zeros(self.dim);
        payload.set(worker % self.dim, 1.0);
        WorkerStep {
            payload_bytes: None,
            payload,
            flops: 5e5,
            extra_overhead: SimDuration::ZERO,
            local_updates: 1,
        }
    }
}

fn heterogeneous_cost(k: usize) -> CostModel {
    let mut spec = ClusterSpec::uniform(k, NodeSpec::standard(), NetworkSpec::gbps1());
    spec.straggler = StragglerModel::LogNormal { sigma: 0.7 };
    CostModel::new(spec)
}

fn run(consistency: Consistency, clocks: u64, k: usize) -> (DenseVector, f64, u64) {
    let cost = heterogeneous_cost(k);
    let mut engine = PsEngine::new(
        &cost,
        PsConfig {
            num_servers: 2,
            consistency,
            aggregation: Aggregation::Sum,
            max_clocks: clocks,
            tick_overhead: SimDuration::from_millis(1),
            seed: 9,
        },
    );
    let mut logic = Recorder {
        dim: 8,
        observed_sums: Vec::new(),
    };
    let (model, stats) = engine.run(DenseVector::zeros(8), &mut logic, |_, _, _| false);
    (model, stats.end_time.as_secs_f64(), stats.total_pushes)
}

#[test]
fn all_modes_apply_every_push() {
    for consistency in [
        Consistency::Bsp,
        Consistency::Ssp { staleness: 2 },
        Consistency::Asp,
    ] {
        let (model, _, pushes) = run(consistency, 6, 4);
        assert_eq!(pushes, 24, "{consistency:?}");
        let total: f64 = (0..8).map(|i| model.get(i)).sum();
        assert!((total - 24.0).abs() < 1e-9, "{consistency:?}: mass {total}");
    }
}

#[test]
fn asp_is_no_slower_than_ssp_is_no_slower_than_bsp() {
    let (_, t_bsp, _) = run(Consistency::Bsp, 12, 6);
    let (_, t_ssp, _) = run(Consistency::Ssp { staleness: 2 }, 12, 6);
    let (_, t_asp, _) = run(Consistency::Asp, 12, 6);
    assert!(t_ssp <= t_bsp * 1.01, "SSP {t_ssp}s vs BSP {t_bsp}s");
    assert!(t_asp <= t_ssp * 1.01, "ASP {t_asp}s vs SSP {t_ssp}s");
    // Under heavy stragglers ASP should be strictly faster than BSP.
    assert!(t_asp < t_bsp, "ASP {t_asp}s vs BSP {t_bsp}s");
}

#[test]
fn asp_observes_fresher_models_on_average_than_its_clock_suggests() {
    // Sanity on the event semantics: observed model mass is nondecreasing
    // in event order for a single worker... globally it must never exceed
    // the total pushed so far; we check the final invariant.
    let cost = heterogeneous_cost(3);
    let mut engine = PsEngine::new(
        &cost,
        PsConfig {
            num_servers: 1,
            consistency: Consistency::Asp,
            aggregation: Aggregation::Sum,
            max_clocks: 10,
            tick_overhead: SimDuration::from_millis(1),
            seed: 4,
        },
    );
    let mut logic = Recorder {
        dim: 8,
        observed_sums: Vec::new(),
    };
    let (model, stats) = engine.run(DenseVector::zeros(8), &mut logic, |_, _, _| false);
    // Every observation is between 0 and the final total mass.
    let final_mass: f64 = (0..8).map(|i| model.get(i)).sum();
    assert_eq!(final_mass as u64, stats.total_pushes);
    for &obs in &logic.observed_sums {
        assert!(obs >= 0.0 && obs <= final_mass);
    }
    // Observations are globally nondecreasing because pushes only add
    // positive mass and events process in time order.
    for w in logic.observed_sums.windows(2) {
        assert!(w[1] >= w[0] - 1e-9);
    }
}

#[test]
fn ssp_bounds_worker_lead() {
    // Track per-worker clock gaps actually realized during an SSP run.
    struct GapTracker {
        dim: usize,
        completed: Vec<u64>,
        max_gap: u64,
    }
    impl WorkerLogic for GapTracker {
        fn compute(&mut self, worker: usize, clock: u64, _m: &DenseVector) -> WorkerStep {
            self.completed[worker] = clock;
            let min = *self.completed.iter().min().expect("nonempty");
            self.max_gap = self.max_gap.max(clock - min);
            WorkerStep {
                payload_bytes: None,
                payload: DenseVector::zeros(self.dim),
                flops: 5e5,
                extra_overhead: SimDuration::ZERO,
                local_updates: 1,
            }
        }
    }
    let staleness = 2;
    let cost = heterogeneous_cost(5);
    let mut engine = PsEngine::new(
        &cost,
        PsConfig {
            num_servers: 2,
            consistency: Consistency::Ssp { staleness },
            aggregation: Aggregation::Sum,
            max_clocks: 15,
            tick_overhead: SimDuration::from_millis(1),
            seed: 11,
        },
    );
    let mut logic = GapTracker {
        dim: 4,
        completed: vec![0; 5],
        max_gap: 0,
    };
    engine.run(DenseVector::zeros(4), &mut logic, |_, _, _| false);
    // The observed gap may exceed the staleness bound by at most the
    // in-flight tick (a worker admitted at gap ≤ s can finish at gap s+1).
    assert!(
        logic.max_gap <= staleness + 1,
        "observed gap {} exceeds staleness {}",
        logic.max_gap,
        staleness
    );
    assert!(logic.max_gap >= 1, "heterogeneity should create some gap");
}
