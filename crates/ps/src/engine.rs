//! The deterministic event-driven parameter-server training engine.

use mlstar_linalg::DenseVector;
use mlstar_sim::{
    dense_op_flops, Activity, CostModel, EventQueue, GanttRecorder, NodeId, SeedStream,
    SimDuration, SimTime,
};
use rand::rngs::StdRng;

use crate::{Aggregation, Consistency, ServerGroup};

/// The result of one worker-local computation tick.
pub struct WorkerStep {
    /// The payload pushed to the servers: a delta under
    /// [`Aggregation::Sum`], the local model under
    /// [`Aggregation::Average`].
    pub payload: DenseVector,
    /// If set, the push is transmitted compressed and this is the
    /// *actual encoded size* of its wire frame (callers compute it with
    /// `mlstar_collectives::wire::encoded_sparse_len` over the real
    /// sparse delta — never a guess); `None` sends the dense payload.
    pub payload_bytes: Option<usize>,
    /// Estimated floating-point work of the tick (drives simulated time).
    pub flops: f64,
    /// Additional fixed overhead for the tick (e.g. Angel's per-batch
    /// vector allocation and garbage collection).
    pub extra_overhead: SimDuration,
    /// Number of model updates performed locally during the tick (for the
    /// updates-per-communication-step accounting of the paper).
    pub local_updates: u64,
}

/// Worker-local computation: what a worker does with a freshly pulled
/// model during one clock tick (one batch for Petuum, one epoch for
/// Angel).
pub trait WorkerLogic {
    /// Computes one tick for `worker` at `clock`, given the pulled model.
    fn compute(&mut self, worker: usize, clock: u64, model: &DenseVector) -> WorkerStep;

    /// Encoded wire size of this worker's pull, if it pulls sparsely
    /// (Angel-style sparse pull of the partition's active features —
    /// callers compute the actual frame length of that index set);
    /// `None` pulls the full dense model.
    fn pull_bytes(&self, _worker: usize) -> Option<usize> {
        None
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct PsConfig {
    /// Number of server shards.
    pub num_servers: usize,
    /// Consistency protocol gating worker progress.
    pub consistency: Consistency,
    /// Server-side aggregation scheme.
    pub aggregation: Aggregation,
    /// Ticks each worker executes (unless stopped early).
    pub max_clocks: u64,
    /// Per-tick scheduling overhead. Parameter-server systems run
    /// persistent worker processes (C++/Java), so this is far smaller than
    /// Spark's per-task launch cost.
    pub tick_overhead: SimDuration,
    /// Seed for straggler draws.
    pub seed: u64,
}

/// Per-clock telemetry summed over all workers: bytes moved through the
/// parameter server, flops charged, and how worker wall-clock time split
/// between computing, communicating, and waiting on consistency.
///
/// Server-side apply time is *not* included — servers run in parallel with
/// the workers and their spans are visible in the Gantt chart instead.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PsClockStats {
    /// Bytes pulled from the servers by all workers during this tick.
    pub pull_bytes: u64,
    /// Bytes pushed to the servers by all workers during this tick.
    pub push_bytes: u64,
    /// Floating-point work charged across all workers.
    pub flops: f64,
    /// Summed worker compute time (including tick overheads), seconds.
    pub compute_s: f64,
    /// Summed worker pull + push transfer time, seconds.
    pub comm_s: f64,
    /// Summed worker time parked on the consistency constraint, seconds.
    pub idle_s: f64,
    /// Local model updates performed across all workers.
    pub updates: u64,
}

/// Statistics of a completed run.
#[derive(Debug, Clone)]
pub struct PsRunStats {
    /// Total pushes applied at the servers.
    pub total_pushes: u64,
    /// Total local model updates across all workers.
    pub total_updates: u64,
    /// Simulated time when the run ended.
    pub end_time: SimTime,
    /// Simulated time at which each global clock (min over workers)
    /// completed.
    pub clock_times: Vec<SimTime>,
    /// Per-clock telemetry, indexed by 0-based tick. Entries past the last
    /// globally completed clock hold partial data from workers running
    /// ahead under SSP; consumers should truncate to
    /// [`PsRunStats::clock_times`]`.len()`.
    pub per_clock: Vec<PsClockStats>,
    /// Whether the run stopped early via the `on_clock` callback.
    pub stopped_early: bool,
}

/// The accumulation slot for `clock`, growing the vector on demand.
fn clock_slot(per_clock: &mut Vec<PsClockStats>, clock: u64) -> &mut PsClockStats {
    let idx = clock as usize;
    if per_clock.len() <= idx {
        per_clock.resize(idx + 1, PsClockStats::default());
    }
    &mut per_clock[idx]
}

/// A deterministic event-driven parameter-server run.
///
/// Workers cycle through pull → compute → push; pushes apply to the
/// sharded global model in global timestamp order, so a pull observes
/// exactly the pushes that arrived before it — asynchronous semantics
/// without threads or nondeterminism.
pub struct PsEngine<'a> {
    cost: &'a CostModel,
    cfg: PsConfig,
    gantt: GanttRecorder,
}

enum Ev {
    /// Worker begins its pull for tick `clock`.
    PullStart { worker: usize },
    /// Worker's push (for the tick it just computed) arrives at servers.
    PushArrive {
        worker: usize,
        payload: DenseVector,
        updates: u64,
    },
}

impl<'a> PsEngine<'a> {
    /// Creates an engine over the given cluster cost model. The number of
    /// workers equals the number of executors in the cluster.
    pub fn new(cost: &'a CostModel, cfg: PsConfig) -> Self {
        assert!(cfg.num_servers > 0, "need at least one server shard");
        assert!(cfg.max_clocks > 0, "need at least one clock tick");
        PsEngine {
            cost,
            cfg,
            gantt: GanttRecorder::new(),
        }
    }

    /// The recorded Gantt spans (valid after [`PsEngine::run`]).
    pub fn gantt(&self) -> &GanttRecorder {
        &self.gantt
    }

    /// Runs the engine from initial model `w0`.
    ///
    /// `on_clock(clock, time, model)` is invoked each time the *global*
    /// clock (the minimum over workers' completed ticks) advances;
    /// returning `true` stops the run after the current event.
    pub fn run<L, F>(
        &mut self,
        w0: DenseVector,
        logic: &mut L,
        mut on_clock: F,
    ) -> (DenseVector, PsRunStats)
    where
        L: WorkerLogic,
        F: FnMut(u64, SimTime, &DenseVector) -> bool,
    {
        let k = self.cost.num_executors();
        let dim = w0.dim();
        let model_bytes = mlstar_collectives::wire::encoded_dense_len(dim);
        let mut servers = ServerGroup::new(dim, self.cfg.num_servers, self.cfg.aggregation);
        servers.initialize(w0);

        let mut rng: StdRng = SeedStream::new(self.cfg.seed).child("ps-straggler").rng();
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut completed = vec![0u64; k];
        let mut parked: Vec<Option<SimTime>> = vec![None; k]; // wait start per worker
        let mut min_clock = 0u64;
        let mut stats = PsRunStats {
            total_pushes: 0,
            total_updates: 0,
            end_time: SimTime::ZERO,
            clock_times: Vec::new(),
            per_clock: Vec::new(),
            stopped_early: false,
        };

        for w in 0..k {
            queue.push(SimTime::ZERO, Ev::PullStart { worker: w });
        }

        'sim: while let Some((now, ev)) = queue.pop() {
            stats.end_time = stats.end_time.max(now);
            match ev {
                Ev::PullStart { worker } => {
                    let clock = completed[worker];
                    // Pull: the worker receives the model (or only its
                    // active coordinates) through its NIC; shards serve in
                    // parallel.
                    let pull_bytes = match logic.pull_bytes(worker) {
                        Some(bytes) => bytes.min(model_bytes),
                        None => model_bytes,
                    };
                    let pull_dur = self.cost.transfer(pull_bytes);
                    // No later event mutates the servers while this event
                    // is being processed, so the worker can read the model
                    // in place — semantically the pull's snapshot.
                    let step = logic.compute(worker, clock, servers.model());
                    assert_eq!(step.payload.dim(), dim, "payload dimension mismatch");
                    let compute_dur = self.cost.executor_compute_with_overhead(
                        worker,
                        step.flops,
                        &mut rng,
                        self.cfg.tick_overhead,
                    ) + step.extra_overhead;
                    let push_bytes = match step.payload_bytes {
                        Some(bytes) => bytes.min(model_bytes),
                        None => model_bytes,
                    };
                    let push_dur = self.cost.transfer(push_bytes);

                    let pull_end = now + pull_dur;
                    let compute_end = pull_end + compute_dur;
                    let push_end = compute_end + push_dur;
                    let node = NodeId::Executor(worker);
                    self.gantt
                        .record(node, Activity::PsPull, now, pull_end, clock);
                    self.gantt
                        .record(node, Activity::Compute, pull_end, compute_end, clock);
                    self.gantt
                        .record(node, Activity::PsPush, compute_end, push_end, clock);

                    let slot = clock_slot(&mut stats.per_clock, clock);
                    slot.pull_bytes += pull_bytes as u64;
                    slot.push_bytes += push_bytes as u64;
                    slot.flops += step.flops;
                    slot.compute_s += compute_dur.as_secs_f64();
                    slot.comm_s += (pull_dur + push_dur).as_secs_f64();
                    slot.updates += step.local_updates;

                    queue.push(
                        push_end,
                        Ev::PushArrive {
                            worker,
                            payload: step.payload,
                            updates: step.local_updates,
                        },
                    );
                    stats.total_updates += step.local_updates;
                }
                Ev::PushArrive {
                    worker,
                    payload,
                    updates,
                } => {
                    let _ = updates;
                    // Servers fold the push in; each shard applies its range.
                    servers.push(&payload);
                    stats.total_pushes += 1;
                    let shard_len = servers.router().max_shard_len();
                    let apply = self.cost.driver_compute(dense_op_flops(shard_len));
                    for s in 0..self.cfg.num_servers {
                        self.gantt.record(
                            NodeId::Server(s),
                            Activity::ServerUpdate,
                            now,
                            now + apply,
                            completed[worker],
                        );
                    }

                    completed[worker] += 1;
                    let new_min = *completed.iter().min().expect("nonempty"); // lint:allow(panic_in_lib): one slot per worker, k ≥ 1
                    if new_min > min_clock {
                        for c in min_clock..new_min {
                            stats.clock_times.push(now);
                            let _ = c;
                        }
                        min_clock = new_min;
                        if on_clock(min_clock, now, servers.model()) {
                            stats.stopped_early = true;
                            break 'sim;
                        }
                        // Release parked workers whose constraint now holds.
                        for w in 0..k {
                            if let Some(wait_start) = parked[w] {
                                if completed[w] < self.cfg.max_clocks
                                    && self.cfg.consistency.may_proceed(completed[w], min_clock)
                                {
                                    if now > wait_start {
                                        self.gantt.record(
                                            NodeId::Executor(w),
                                            Activity::Wait,
                                            wait_start,
                                            now,
                                            completed[w],
                                        );
                                        clock_slot(&mut stats.per_clock, completed[w]).idle_s +=
                                            now.since(wait_start).as_secs_f64();
                                    }
                                    parked[w] = None;
                                    queue.push(now, Ev::PullStart { worker: w });
                                }
                            }
                        }
                    }

                    // Schedule this worker's next tick.
                    if completed[worker] < self.cfg.max_clocks {
                        if self
                            .cfg
                            .consistency
                            .may_proceed(completed[worker], min_clock)
                        {
                            queue.push(now, Ev::PullStart { worker });
                        } else {
                            parked[worker] = Some(now);
                        }
                    }
                }
            }
        }

        (servers.pull(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlstar_sim::{ClusterSpec, NetworkSpec, NodeSpec, StragglerModel};

    /// Logic that pushes a constant delta and counts invocations.
    struct ConstDelta {
        dim: usize,
        calls: Vec<(usize, u64)>,
    }

    impl WorkerLogic for ConstDelta {
        fn compute(&mut self, worker: usize, clock: u64, _model: &DenseVector) -> WorkerStep {
            self.calls.push((worker, clock));
            let mut payload = DenseVector::zeros(self.dim);
            payload.set(0, 1.0);
            WorkerStep {
                payload,
                payload_bytes: None,
                flops: 1e6,
                extra_overhead: SimDuration::ZERO,
                local_updates: 1,
            }
        }
    }

    fn cost(k: usize) -> CostModel {
        CostModel::new(ClusterSpec::uniform(
            k,
            NodeSpec::standard(),
            NetworkSpec::gbps1(),
        ))
    }

    fn cfg(consistency: Consistency, max_clocks: u64) -> PsConfig {
        PsConfig {
            num_servers: 2,
            consistency,
            aggregation: Aggregation::Sum,
            max_clocks,
            tick_overhead: SimDuration::from_millis(2),
            seed: 1,
        }
    }

    #[test]
    fn bsp_run_applies_all_pushes() {
        let cost = cost(4);
        let mut engine = PsEngine::new(&cost, cfg(Consistency::Bsp, 3));
        let mut logic = ConstDelta {
            dim: 8,
            calls: Vec::new(),
        };
        let (model, stats) = engine.run(DenseVector::zeros(8), &mut logic, |_, _, _| false);
        // 4 workers × 3 clocks, each adding 1.0 at coordinate 0.
        assert_eq!(stats.total_pushes, 12);
        assert_eq!(stats.total_updates, 12);
        assert!((model.get(0) - 12.0).abs() < 1e-12);
        assert_eq!(stats.clock_times.len(), 3);
        assert!(!stats.stopped_early);
        assert_eq!(logic.calls.len(), 12);
    }

    #[test]
    fn bsp_workers_never_lead_by_more_than_one() {
        let cost = cost(4);
        let mut engine = PsEngine::new(&cost, cfg(Consistency::Bsp, 5));
        struct TrackLead {
            dim: usize,
            clocks_seen: Vec<u64>,
        }
        impl WorkerLogic for TrackLead {
            fn compute(&mut self, _w: usize, clock: u64, _m: &DenseVector) -> WorkerStep {
                self.clocks_seen.push(clock);
                WorkerStep {
                    payload: DenseVector::zeros(self.dim),
                    payload_bytes: None,
                    flops: 1e6,
                    extra_overhead: SimDuration::ZERO,
                    local_updates: 1,
                }
            }
        }
        let mut logic = TrackLead {
            dim: 4,
            clocks_seen: Vec::new(),
        };
        engine.run(DenseVector::zeros(4), &mut logic, |_, _, _| false);
        // Under BSP, tick c+1 computations never start before every tick-c
        // compute has happened: the sequence of observed clocks is sorted.
        let mut sorted = logic.clocks_seen.clone();
        sorted.sort_unstable();
        assert_eq!(logic.clocks_seen, sorted);
    }

    #[test]
    fn straggler_makes_ssp_useful() {
        // With a heterogeneous cluster, SSP should finish no later than
        // BSP (fast workers are not barriered every tick).
        let mut spec = ClusterSpec::uniform(4, NodeSpec::standard(), NetworkSpec::gbps1());
        spec.straggler = StragglerModel::LogNormal { sigma: 0.8 };
        let cost = CostModel::new(spec);

        let run = |consistency| {
            let mut engine = PsEngine::new(&cost, cfg(consistency, 10));
            let mut logic = ConstDelta {
                dim: 8,
                calls: Vec::new(),
            };
            let (_, stats) = engine.run(DenseVector::zeros(8), &mut logic, |_, _, _| false);
            stats.end_time.as_secs_f64()
        };
        let bsp = run(Consistency::Bsp);
        let ssp = run(Consistency::Ssp { staleness: 3 });
        assert!(ssp <= bsp * 1.01, "SSP {ssp}s should not exceed BSP {bsp}s");
    }

    #[test]
    fn early_stop_halts_run() {
        let cost = cost(2);
        let mut engine = PsEngine::new(&cost, cfg(Consistency::Bsp, 100));
        let mut logic = ConstDelta {
            dim: 4,
            calls: Vec::new(),
        };
        let (_, stats) = engine.run(DenseVector::zeros(4), &mut logic, |clock, _, _| clock >= 3);
        assert!(stats.stopped_early);
        assert!(stats.total_pushes < 200, "stopped long before 100 clocks");
    }

    #[test]
    fn averaging_aggregation_is_applied() {
        let cost = cost(2);
        let cfg = PsConfig {
            num_servers: 1,
            consistency: Consistency::Bsp,
            aggregation: Aggregation::Average { num_workers: 2 },
            max_clocks: 1,
            tick_overhead: SimDuration::from_millis(2),
            seed: 1,
        };
        struct PushOnes;
        impl WorkerLogic for PushOnes {
            fn compute(&mut self, _w: usize, _c: u64, m: &DenseVector) -> WorkerStep {
                WorkerStep {
                    payload: DenseVector::filled(m.dim(), 1.0),
                    payload_bytes: None,
                    flops: 1e6,
                    extra_overhead: SimDuration::ZERO,
                    local_updates: 1,
                }
            }
        }
        let mut engine = PsEngine::new(&cost, cfg);
        let (model, _) = engine.run(DenseVector::zeros(3), &mut PushOnes, |_, _, _| false);
        // Two averaging pushes of all-ones from w=0: 1 − (1/2)² = 0.75.
        assert!((model.get(0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gantt_records_pull_compute_push() {
        let cost = cost(2);
        let mut engine = PsEngine::new(&cost, cfg(Consistency::Bsp, 2));
        let mut logic = ConstDelta {
            dim: 4,
            calls: Vec::new(),
        };
        engine.run(DenseVector::zeros(4), &mut logic, |_, _, _| false);
        let g = engine.gantt();
        for a in [
            Activity::PsPull,
            Activity::Compute,
            Activity::PsPush,
            Activity::ServerUpdate,
        ] {
            assert!(
                g.spans().iter().any(|s| s.activity == a),
                "missing {a:?} span"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cost = cost(3);
        let run = || {
            let mut engine = PsEngine::new(&cost, cfg(Consistency::Ssp { staleness: 1 }, 4));
            let mut logic = ConstDelta {
                dim: 4,
                calls: Vec::new(),
            };
            let (m, s) = engine.run(DenseVector::zeros(4), &mut logic, |_, _, _| false);
            (m, s.end_time, logic.calls)
        };
        let (m1, t1, c1) = run();
        let (m2, t2, c2) = run();
        assert_eq!(m1.as_slice(), m2.as_slice());
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn per_clock_stats_cover_every_tick() {
        let cost = cost(4);
        let mut engine = PsEngine::new(&cost, cfg(Consistency::Bsp, 3));
        let mut logic = ConstDelta {
            dim: 8,
            calls: Vec::new(),
        };
        let (_, stats) = engine.run(DenseVector::zeros(8), &mut logic, |_, _, _| false);
        assert_eq!(stats.per_clock.len(), 3);
        for (c, s) in stats.per_clock.iter().enumerate() {
            assert_eq!(s.updates, 4, "clock {c}: one update per worker");
            assert!(s.flops > 0.0 && s.compute_s > 0.0 && s.comm_s > 0.0);
            assert!(s.pull_bytes > 0 && s.push_bytes > 0);
        }
        // Summed per-clock updates equal the run total.
        let total: u64 = stats.per_clock.iter().map(|s| s.updates).sum();
        assert_eq!(total, stats.total_updates);
    }

    #[test]
    fn per_clock_idle_matches_wait_spans() {
        // A heterogeneous cluster under BSP parks fast workers; their
        // recorded Wait spans and the per-clock idle totals must agree.
        let mut spec = ClusterSpec::uniform(4, NodeSpec::standard(), NetworkSpec::gbps1());
        spec.straggler = StragglerModel::LogNormal { sigma: 0.8 };
        let cost = CostModel::new(spec);
        let mut engine = PsEngine::new(&cost, cfg(Consistency::Bsp, 4));
        let mut logic = ConstDelta {
            dim: 8,
            calls: Vec::new(),
        };
        let (_, stats) = engine.run(DenseVector::zeros(8), &mut logic, |_, _, _| false);
        let wait_total: f64 = engine
            .gantt()
            .spans()
            .iter()
            .filter(|s| s.activity == Activity::Wait)
            .map(|s| (s.end - s.start).as_secs_f64())
            .sum();
        let idle_total: f64 = stats.per_clock.iter().map(|s| s.idle_s).sum();
        assert!(
            (wait_total - idle_total).abs() < 1e-9,
            "waits {wait_total} vs idle {idle_total}"
        );
        assert!(idle_total > 0.0, "BSP on a straggly cluster must park");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let cost = cost(1);
        let bad = PsConfig {
            num_servers: 0,
            ..cfg(Consistency::Bsp, 1)
        };
        let _ = PsEngine::new(&cost, bad);
    }
}
