//! Consistency protocols: BSP, SSP and ASP admission control.

use serde::{Deserialize, Serialize};

/// The consistency controller deciding when a worker may start its next
/// clock tick, given the slowest worker's progress.
///
/// The paper (Section III-B): "Parameter servers can leverage different
/// consistency controllers to implement different communication schemes
/// such as BSP, SSP, and ASP, by enabling or disabling requests from
/// workers."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Consistency {
    /// Bulk Synchronous Parallel: a worker may start tick `c` only after
    /// every worker has completed tick `c − 1` (equivalent to SSP with
    /// staleness 0).
    Bsp,
    /// Stale Synchronous Parallel: a worker may run at most `staleness`
    /// ticks ahead of the slowest worker (Petuum's protocol).
    Ssp {
        /// Maximum allowed clock gap.
        staleness: u64,
    },
    /// Fully asynchronous: no gating.
    Asp,
}

impl Consistency {
    /// May a worker that has completed `worker_clock` ticks start its next
    /// tick, when the slowest worker has completed `min_clock` ticks?
    ///
    /// `worker_clock >= min_clock` always holds by definition of the
    /// minimum.
    #[inline]
    pub fn may_proceed(&self, worker_clock: u64, min_clock: u64) -> bool {
        debug_assert!(worker_clock >= min_clock);
        match self {
            Consistency::Bsp => worker_clock == min_clock,
            Consistency::Ssp { staleness } => worker_clock - min_clock <= *staleness,
            Consistency::Asp => true,
        }
    }

    /// Short label for benchmark output.
    pub fn label(&self) -> String {
        match self {
            Consistency::Bsp => "BSP".to_owned(),
            Consistency::Ssp { staleness } => format!("SSP(s={staleness})"),
            Consistency::Asp => "ASP".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_requires_lockstep() {
        let c = Consistency::Bsp;
        assert!(c.may_proceed(0, 0));
        assert!(!c.may_proceed(1, 0));
        assert!(c.may_proceed(5, 5));
        assert!(!c.may_proceed(6, 5));
    }

    #[test]
    fn ssp_allows_bounded_lead() {
        let c = Consistency::Ssp { staleness: 2 };
        assert!(c.may_proceed(0, 0));
        assert!(c.may_proceed(2, 0));
        assert!(!c.may_proceed(3, 0));
        assert!(c.may_proceed(7, 5));
        assert!(!c.may_proceed(8, 5));
    }

    #[test]
    fn ssp_zero_equals_bsp() {
        let ssp0 = Consistency::Ssp { staleness: 0 };
        for (wc, mc) in [(0u64, 0u64), (1, 0), (3, 3), (4, 3)] {
            assert_eq!(
                ssp0.may_proceed(wc, mc),
                Consistency::Bsp.may_proceed(wc, mc)
            );
        }
    }

    #[test]
    fn asp_never_blocks() {
        let c = Consistency::Asp;
        assert!(c.may_proceed(1000, 0));
    }

    #[test]
    fn labels() {
        assert_eq!(Consistency::Bsp.label(), "BSP");
        assert_eq!(Consistency::Ssp { staleness: 3 }.label(), "SSP(s=3)");
        assert_eq!(Consistency::Asp.label(), "ASP");
    }
}
