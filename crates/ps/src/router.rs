//! Range partitioning of model coordinates across server shards.

use std::ops::Range;

use mlstar_linalg::partition_ranges;

/// Maps model coordinates to server shards by contiguous ranges (the
/// partitioning scheme of both Petuum and Angel for dense models).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRouter {
    ranges: Vec<Range<usize>>,
}

impl KeyRouter {
    /// Splits `[0, dim)` across `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    pub fn new(dim: usize, num_shards: usize) -> Self {
        KeyRouter {
            ranges: partition_ranges(dim, num_shards),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The coordinate range owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn range(&self, shard: usize) -> Range<usize> {
        self.ranges[shard].clone()
    }

    /// All ranges in shard order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// The shard owning coordinate `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside `[0, dim)`.
    pub fn shard_of(&self, key: usize) -> usize {
        // Ranges are contiguous and sorted; binary search on start.
        match self.ranges.binary_search_by(|r| {
            if key < r.start {
                std::cmp::Ordering::Greater
            } else if key >= r.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(s) => s,
            Err(_) => panic!("key {key} outside routed dimension"),
        }
    }

    /// The size of the largest shard in coordinates (what the slowest pull
    /// link carries).
    pub fn max_shard_len(&self) -> usize {
        self.ranges.iter().map(Range::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_every_key_to_its_range() {
        let r = KeyRouter::new(10, 3);
        assert_eq!(r.num_shards(), 3);
        for key in 0..10 {
            let s = r.shard_of(key);
            assert!(r.range(s).contains(&key), "key {key} → shard {s}");
        }
    }

    #[test]
    fn shards_partition_the_space() {
        let r = KeyRouter::new(100, 7);
        let total: usize = r.ranges().iter().map(Range::len).sum();
        assert_eq!(total, 100);
        assert_eq!(r.ranges()[0].start, 0);
        assert_eq!(r.ranges().last().unwrap().end, 100);
    }

    #[test]
    #[should_panic(expected = "outside routed dimension")]
    fn out_of_range_key_panics() {
        KeyRouter::new(10, 2).shard_of(10);
    }

    #[test]
    fn max_shard_len() {
        assert_eq!(KeyRouter::new(10, 3).max_shard_len(), 4);
        assert_eq!(KeyRouter::new(9, 3).max_shard_len(), 3);
        assert_eq!(KeyRouter::new(0, 3).max_shard_len(), 0);
    }

    #[test]
    fn single_shard_owns_everything() {
        let r = KeyRouter::new(5, 1);
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(4), 0);
        assert_eq!(r.range(0), 0..5);
    }
}
