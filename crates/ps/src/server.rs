//! The sharded global model and its update schemes.

use mlstar_linalg::DenseVector;
use serde::{Deserialize, Serialize};

use crate::KeyRouter;

/// How servers fold a worker's push into the global model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// *Model summation* (original Petuum): the push payload is a **delta**
    /// (`w_local − w_pulled`, or `−η·g` accumulated) that servers add to
    /// the global model. The paper notes this "can lead to potential
    /// divergence".
    Sum,
    /// *Model averaging* (Petuum\*): the push payload is the worker's
    /// **local model**; servers move the global model toward it by `1/k`
    /// (the online form of averaging k workers' models, well-defined under
    /// asynchrony).
    Average {
        /// Number of workers `k`.
        num_workers: usize,
    },
}

/// The global model, sharded across parameter servers by a [`KeyRouter`].
///
/// The shards are stored as one dense vector plus the router (shards are
/// contiguous ranges); per-shard views are exposed for size accounting and
/// tests.
#[derive(Debug, Clone)]
pub struct ServerGroup {
    model: DenseVector,
    router: KeyRouter,
    aggregation: Aggregation,
    version: u64,
}

impl ServerGroup {
    /// A server group holding a zero model of dimension `dim` across
    /// `num_shards` shards.
    pub fn new(dim: usize, num_shards: usize, aggregation: Aggregation) -> Self {
        ServerGroup {
            model: DenseVector::zeros(dim),
            router: KeyRouter::new(dim, num_shards),
            aggregation,
            version: 0,
        }
    }

    /// Replaces the global model (initialization, `w₀`).
    pub fn initialize(&mut self, w0: DenseVector) {
        assert_eq!(w0.dim(), self.model.dim(), "w0 dimension mismatch");
        self.model = w0;
        self.version += 1;
    }

    /// The current global model (what a worker's pull observes).
    pub fn pull(&self) -> DenseVector {
        self.model.clone()
    }

    /// A read-only view without cloning (for objective evaluation).
    pub fn model(&self) -> &DenseVector {
        &self.model
    }

    /// Applies one worker's push under the configured aggregation scheme.
    ///
    /// # Panics
    ///
    /// Panics if the payload dimension disagrees with the model.
    pub fn push(&mut self, payload: &DenseVector) {
        assert_eq!(payload.dim(), self.model.dim(), "push dimension mismatch");
        match self.aggregation {
            Aggregation::Sum => self.model.axpy(1.0, payload),
            Aggregation::Average { num_workers } => {
                let alpha = 1.0 / num_workers as f64;
                // model ← (1 − 1/k)·model + (1/k)·payload
                self.model.scale(1.0 - alpha);
                self.model.axpy(alpha, payload);
            }
        }
        self.version += 1;
    }

    /// Number of pushes/initializations applied so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The router (for shard size accounting).
    pub fn router(&self) -> &KeyRouter {
        &self.router
    }

    /// The aggregation scheme.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(v: &[f64]) -> DenseVector {
        DenseVector::from_vec(v.to_vec())
    }

    #[test]
    fn sum_applies_deltas() {
        let mut s = ServerGroup::new(3, 2, Aggregation::Sum);
        s.push(&dv(&[1.0, 0.0, -1.0]));
        s.push(&dv(&[1.0, 2.0, 0.0]));
        assert_eq!(s.pull().as_slice(), &[2.0, 2.0, -1.0]);
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn average_moves_toward_pushed_model() {
        let mut s = ServerGroup::new(2, 1, Aggregation::Average { num_workers: 4 });
        s.initialize(dv(&[4.0, 0.0]));
        s.push(&dv(&[0.0, 4.0]));
        // (1 − 1/4)·[4,0] + 1/4·[0,4] = [3, 1]
        assert_eq!(s.pull().as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn k_pushes_of_same_model_converge_toward_it() {
        let mut s = ServerGroup::new(1, 1, Aggregation::Average { num_workers: 2 });
        s.initialize(dv(&[0.0]));
        for _ in 0..20 {
            s.push(&dv(&[1.0]));
        }
        assert!((s.pull().get(0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pull_is_a_snapshot() {
        let mut s = ServerGroup::new(1, 1, Aggregation::Sum);
        let snap = s.pull();
        s.push(&dv(&[5.0]));
        assert_eq!(snap.get(0), 0.0);
        assert_eq!(s.model().get(0), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_checks_dimension() {
        let mut s = ServerGroup::new(3, 1, Aggregation::Sum);
        s.push(&dv(&[1.0]));
    }

    #[test]
    fn sharding_covers_model() {
        let s = ServerGroup::new(100, 8, Aggregation::Sum);
        let total: usize = s.router().ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, 100);
        assert_eq!(s.router().num_shards(), 8);
    }
}
