//! Parameter-server substrate.
//!
//! Petuum and Angel — the specialized systems the paper compares against —
//! are both *SendModel* systems built on the parameter-server architecture
//! (Figure 2c): the global model lives sharded across server nodes; workers
//! pull it, compute local updates, and push them back under a consistency
//! protocol (BSP, SSP or ASP).
//!
//! This crate provides that architecture over the simulated cluster:
//!
//! * [`KeyRouter`] — range-partitions model coordinates across shards.
//! * [`ServerGroup`] — the sharded global model with pluggable update
//!   [`Aggregation`] (summation as in Petuum, or incremental averaging as
//!   in the paper's Petuum\* variant).
//! * [`Consistency`] — BSP / SSP(staleness) / ASP admission control.
//! * [`PsEngine`] — a deterministic event-driven execution engine: workers
//!   progress through pull → compute → push state machines on the
//!   discrete-event queue, so staleness has *real* semantics (a pull
//!   observes exactly the pushes applied before it in simulated time).
//!
//! The worker-local computation is supplied by the caller through
//! [`WorkerLogic`], which is how `mlstar-core` expresses the difference
//! between Petuum (per-batch communication) and Angel (per-epoch
//! communication with per-batch allocation overhead).
//!
//! # Example
//!
//! ```
//! use mlstar_linalg::DenseVector;
//! use mlstar_ps::{Aggregation, Consistency, PsConfig, PsEngine, WorkerLogic, WorkerStep};
//! use mlstar_sim::{ClusterSpec, CostModel, NetworkSpec, NodeSpec, SimDuration};
//!
//! struct AddOne;
//! impl WorkerLogic for AddOne {
//!     fn compute(&mut self, worker: usize, _clock: u64, model: &DenseVector) -> WorkerStep {
//!         let mut delta = DenseVector::zeros(model.dim());
//!         delta.set(worker, 1.0);
//!         WorkerStep {
//!             payload: delta,
//!             payload_bytes: Some(mlstar_collectives::wire::encoded_sparse_len(1)),
//!             flops: 1e6,
//!             extra_overhead: SimDuration::ZERO,
//!             local_updates: 1,
//!         }
//!     }
//! }
//!
//! let cost = CostModel::new(ClusterSpec::uniform(2, NodeSpec::standard(), NetworkSpec::gbps1()));
//! let mut engine = PsEngine::new(&cost, PsConfig {
//!     num_servers: 1,
//!     consistency: Consistency::Ssp { staleness: 1 },
//!     aggregation: Aggregation::Sum,
//!     max_clocks: 3,
//!     tick_overhead: SimDuration::from_millis(2),
//!     seed: 1,
//! });
//! let (model, stats) = engine.run(DenseVector::zeros(2), &mut AddOne, |_, _, _| false);
//! assert_eq!(stats.total_pushes, 6);
//! assert_eq!(model.as_slice(), &[3.0, 3.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consistency;
mod engine;
mod router;
mod server;

pub use consistency::Consistency;
pub use engine::{PsClockStats, PsConfig, PsEngine, PsRunStats, WorkerLogic, WorkerStep};
pub use router::KeyRouter;
pub use server::{Aggregation, ServerGroup};
