//! Property-based tests for dataset generation and LIBSVM I/O.

use mlstar_data::{libsvm, Partitioner, SparseDataset, SyntheticConfig};
use mlstar_linalg::SparseVector;
use proptest::prelude::*;

/// Strategy for arbitrary valid datasets.
fn dataset() -> impl Strategy<Value = SparseDataset> {
    (2usize..40, 1usize..30).prop_flat_map(|(n, d)| {
        proptest::collection::vec(
            (
                proptest::collection::vec((0u32..d as u32, -5.0f64..5.0), 0..6),
                prop_oneof![Just(1.0f64), Just(-1.0)],
            ),
            1..n,
        )
        .prop_map(move |rows| {
            let mut ds = SparseDataset::empty(d);
            for (pairs, label) in rows {
                ds.push(SparseVector::from_pairs(d, &pairs).expect("valid"), label);
            }
            ds
        })
    })
}

proptest! {
    /// Every dataset survives a LIBSVM round trip bit-for-bit in structure
    /// and near-exactly in values (decimal formatting).
    #[test]
    fn libsvm_roundtrip(ds in dataset()) {
        let text = libsvm::write_string(&ds);
        let back = libsvm::read_str(&text, ds.num_features()).expect("parses");
        prop_assert_eq!(back.len(), ds.len());
        prop_assert_eq!(back.labels(), ds.labels());
        for (a, b) in ds.rows().iter().zip(back.rows().iter()) {
            prop_assert_eq!(a.indices(), b.indices());
            for (x, y) in a.values().iter().zip(b.values().iter()) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }

    /// Generated datasets always satisfy their declared shape and sparse
    /// invariants.
    #[test]
    fn generator_respects_config(
        n in 16usize..200,
        d in 8usize..100,
        seed in 0u64..500,
        skew in 1.0f64..3.0,
    ) {
        let cfg = SyntheticConfig {
            name: "prop".into(),
            num_instances: n,
            num_features: d,
            avg_nnz: (d / 5).max(1),
            feature_skew: skew,
            margin_noise: 0.2,
            flip_prob: 0.05,
            binary_features: true,
            margin_scale: 2.0,
            informative_features: (d / 4).max(1),
            popular_fraction: 0.3,
            seed,
        };
        let ds = cfg.generate();
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.num_features(), d);
        for row in ds.rows() {
            prop_assert!(row.nnz() >= 1);
            prop_assert!(row.validate().is_ok());
        }
        for &y in ds.labels() {
            prop_assert!(y == 1.0 || y == -1.0);
        }
        // Determinism.
        prop_assert_eq!(ds, cfg.generate());
    }

    /// The stats block is internally consistent.
    #[test]
    fn stats_are_consistent(ds in dataset()) {
        let s = ds.stats();
        prop_assert_eq!(s.instances, ds.len());
        prop_assert_eq!(s.features, ds.num_features());
        prop_assert_eq!(s.total_nnz, ds.total_nnz());
        prop_assert!((0.0..=1.0).contains(&s.positive_fraction));
        prop_assert!((s.avg_nnz - s.total_nnz as f64 / s.instances as f64).abs() < 1e-9);
        prop_assert_eq!(s.underdetermined, s.features > s.instances);
    }

    /// Arbitrary mixes of valid, blank, comment, and malformed LIBSVM
    /// lines never panic the parser, and the error names the *file* line
    /// of the first offending row — including rows whose index exceeds
    /// the declared dimension, which are only caught in the reader's
    /// second pass after blank/comment lines have been dropped.
    #[test]
    fn libsvm_malformed_lines_error_with_file_line(
        kinds in proptest::collection::vec(0usize..8, 1..30),
        seed in 0u64..1000,
    ) {
        const DIM: usize = 8;
        let mut text = String::new();
        let mut first_pass_err: Option<usize> = None; // label/pair syntax
        let mut second_pass_err: Option<usize> = None; // out-of-bounds idx
        let mut valid_rows = 0usize;
        for (i, kind) in kinds.iter().enumerate() {
            let line_no = i + 1;
            let idx = (seed + i as u64) % DIM as u64 + 1; // in-bounds, 1-based
            match kind {
                0 | 1 => {
                    text.push_str(&format!("+1 {idx}:1.5\n"));
                    if first_pass_err.is_none() && second_pass_err.is_none() {
                        valid_rows += 1;
                    }
                }
                2 => text.push('\n'),
                3 => text.push_str("# comment\n"),
                4 => {
                    text.push_str("banana 1:1\n");
                    first_pass_err.get_or_insert(line_no);
                }
                5 => {
                    text.push_str("+1 notapair\n");
                    first_pass_err.get_or_insert(line_no);
                }
                6 => {
                    text.push_str("+1 0:1\n");
                    first_pass_err.get_or_insert(line_no);
                }
                _ => {
                    text.push_str(&format!("+1 {}:1\n", DIM + 1));
                    if first_pass_err.is_none() {
                        second_pass_err.get_or_insert(line_no);
                    }
                }
            }
        }
        match libsvm::read_str(&text, DIM) {
            Ok(ds) => {
                prop_assert!(first_pass_err.is_none() && second_pass_err.is_none());
                prop_assert_eq!(ds.len(), valid_rows);
            }
            Err(mlstar_data::DataError::Parse { line, .. }) => {
                let expected = first_pass_err.or(second_pass_err);
                prop_assert_eq!(Some(line), expected);
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    /// Skewed partitioning gives worker 0 its share (within rounding) and
    /// still covers every row exactly once.
    #[test]
    fn skewed_partitioner_honors_fraction(
        n in 20usize..300,
        k in 2usize..10,
        frac in 0.05f64..0.95,
        seed in 0u64..100,
    ) {
        let parts = Partitioner::SkewedShuffled { seed, hot_fraction: frac }.partition(n, k);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        let clamped = frac.clamp(1.0 / k as f64, 0.95);
        let expected = (n as f64 * clamped).round() as usize;
        prop_assert_eq!(parts[0].len(), expected.min(n));
    }
}
