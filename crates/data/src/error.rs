//! Error type for dataset I/O and construction.

use std::fmt;

/// Errors produced when loading or constructing datasets.
#[derive(Debug)]
pub enum DataError {
    /// A malformed line in a LIBSVM file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O failure.
    Io(std::io::Error),
    /// Rows and labels disagree, or a row has the wrong dimension.
    Inconsistent(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Inconsistent(msg) => write!(f, "inconsistent dataset: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DataError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = DataError::Inconsistent("labels mismatch".into());
        assert!(e.to_string().contains("labels mismatch"));
        let e: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
