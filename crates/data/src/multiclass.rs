//! Multiclass datasets and one-vs-rest binarization.
//!
//! MLlib trains multiclass linear models via one-vs-rest: `C` binary
//! problems, each distinguishing one class from all others. This module
//! provides the multiclass dataset type, a seeded generator (labels =
//! argmax of `C` planted linear scorers), and the per-class binarization
//! consumed by `mlstar-core`'s `OneVsRest` trainer.

use mlstar_linalg::SparseVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::synthetic::{normal, power_law_index};
use crate::{DataError, SparseDataset};

/// A sparse multiclass dataset with labels in `0..num_classes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticlassDataset {
    num_features: usize,
    num_classes: u32,
    rows: Vec<SparseVector>,
    labels: Vec<u32>,
}

impl MulticlassDataset {
    /// Creates a dataset, validating shapes and label range.
    pub fn new(
        num_features: usize,
        num_classes: u32,
        rows: Vec<SparseVector>,
        labels: Vec<u32>,
    ) -> Result<Self, DataError> {
        if num_classes < 2 {
            return Err(DataError::Inconsistent(format!(
                "need at least 2 classes, got {num_classes}"
            )));
        }
        if rows.len() != labels.len() {
            return Err(DataError::Inconsistent(format!(
                "{} rows but {} labels",
                rows.len(),
                labels.len()
            )));
        }
        for (i, r) in rows.iter().enumerate() {
            if r.dim() != num_features {
                return Err(DataError::Inconsistent(format!(
                    "row {i} has dimension {} but dataset declares {num_features}",
                    r.dim()
                )));
            }
        }
        if let Some((i, &y)) = labels.iter().enumerate().find(|(_, &y)| y >= num_classes) {
            return Err(DataError::Inconsistent(format!(
                "label {y} at row {i} outside 0..{num_classes}"
            )));
        }
        Ok(MulticlassDataset {
            num_features,
            num_classes,
            rows,
            labels,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes `C`.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// The example rows.
    pub fn rows(&self) -> &[SparseVector] {
        &self.rows
    }

    /// The class labels, parallel to [`MulticlassDataset::rows`].
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The one-vs-rest binarization for `class`: `+1` for rows of that
    /// class, `−1` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes`.
    pub fn binarized(&self, class: u32) -> SparseDataset {
        assert!(class < self.num_classes, "class out of range");
        let labels = self
            .labels
            .iter()
            .map(|&y| if y == class { 1.0 } else { -1.0 })
            .collect();
        SparseDataset::new(self.num_features, self.rows.clone(), labels)
            .expect("binarization preserves validity") // lint:allow(panic_in_lib): rows were validated when self was constructed
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes as usize];
        for &y in &self.labels {
            counts[y as usize] += 1;
        }
        counts
    }
}

/// Seeded generator of multiclass problems: `C` planted linear scorers,
/// labels = argmax score (+ Gaussian noise per scorer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticlassConfig {
    /// Dataset name.
    pub name: String,
    /// Number of examples.
    pub num_instances: usize,
    /// Feature dimensionality.
    pub num_features: usize,
    /// Number of classes (≥ 2).
    pub num_classes: u32,
    /// Average nonzeros per row.
    pub avg_nnz: usize,
    /// Power-law skew of feature popularity (≥ 1).
    pub feature_skew: f64,
    /// Std of per-scorer Gaussian noise before the argmax.
    pub score_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MulticlassConfig {
    /// A small default problem.
    pub fn small(name: &str, num_instances: usize, num_features: usize, num_classes: u32) -> Self {
        MulticlassConfig {
            name: name.to_owned(),
            num_instances,
            num_features,
            num_classes,
            avg_nnz: (num_features / 10).clamp(2, 50),
            feature_skew: 1.5,
            score_noise: 0.1,
            seed: 42,
        }
    }

    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero sizes, < 2 classes,
    /// skew < 1).
    pub fn generate(&self) -> MulticlassDataset {
        assert!(self.num_instances > 0, "num_instances must be positive");
        assert!(self.num_features > 0, "num_features must be positive");
        assert!(self.num_classes >= 2, "need at least 2 classes");
        assert!(self.avg_nnz > 0, "avg_nnz must be positive");
        assert!(self.feature_skew >= 1.0, "feature_skew must be ≥ 1");

        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale = 2.0 / (self.avg_nnz as f64).sqrt();
        let scorers: Vec<Vec<f64>> = (0..self.num_classes)
            .map(|_| {
                (0..self.num_features)
                    .map(|_| normal(&mut rng) * scale)
                    .collect()
            })
            .collect();

        let lo = (self.avg_nnz / 2).max(1);
        let hi = (self.avg_nnz + self.avg_nnz / 2).clamp(lo, self.num_features);
        let mut rows = Vec::with_capacity(self.num_instances);
        let mut labels = Vec::with_capacity(self.num_instances);
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for _ in 0..self.num_instances {
            let nnz = rng.gen_range(lo..=hi);
            pairs.clear();
            for _ in 0..nnz {
                let idx = power_law_index(&mut rng, self.num_features, self.feature_skew);
                pairs.push((idx as u32, 1.0));
            }
            let row = SparseVector::from_pairs(self.num_features, &pairs).expect("in bounds"); // lint:allow(panic_in_lib): indices are drawn modulo num_features
            let label = scorers
                .iter()
                .enumerate()
                .map(|(c, w)| {
                    let score: f64 = row.iter().map(|(i, v)| w[i] * v).sum::<f64>()
                        + self.score_noise * normal(&mut rng);
                    (c as u32, score)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least two classes") // lint:allow(panic_in_lib): config validation guarantees num_classes ≥ 2
                .0;
            rows.push(row);
            labels.push(label);
        }
        MulticlassDataset::new(self.num_features, self.num_classes, rows, labels)
            .expect("generator output is valid") // lint:allow(panic_in_lib): labels come from 0..num_classes by construction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MulticlassDataset {
        MulticlassConfig::small("mc", 300, 40, 4).generate()
    }

    #[test]
    fn generates_requested_shape_with_all_classes() {
        let ds = tiny();
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.num_features(), 40);
        assert_eq!(ds.num_classes(), 4);
        let counts = ds.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 300);
        assert!(
            counts.iter().all(|&c| c > 10),
            "every class should be populated: {counts:?}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(tiny(), tiny());
        let other = MulticlassConfig {
            seed: 7,
            ..MulticlassConfig::small("mc", 300, 40, 4)
        };
        assert_ne!(tiny(), other.generate());
    }

    #[test]
    fn binarization_maps_labels() {
        let ds = tiny();
        let counts = ds.class_counts();
        for class in 0..4u32 {
            let bin = ds.binarized(class);
            assert_eq!(bin.len(), ds.len());
            let positives = bin.labels().iter().filter(|&&y| y == 1.0).count();
            assert_eq!(positives, counts[class as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn binarize_rejects_bad_class() {
        let _ = tiny().binarized(4);
    }

    #[test]
    fn new_validates() {
        let row = SparseVector::from_pairs(3, &[(0, 1.0)]).unwrap();
        assert!(MulticlassDataset::new(3, 1, vec![row.clone()], vec![0]).is_err());
        assert!(MulticlassDataset::new(3, 3, vec![row.clone()], vec![3]).is_err());
        assert!(MulticlassDataset::new(3, 3, vec![row.clone()], vec![]).is_err());
        assert!(MulticlassDataset::new(4, 3, vec![row.clone()], vec![0]).is_err());
        assert!(MulticlassDataset::new(3, 3, vec![row], vec![2]).is_ok());
    }

    #[test]
    fn empty_checks() {
        let ds = MulticlassDataset::new(3, 2, vec![], vec![]).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.class_counts(), vec![0, 0]);
    }
}
