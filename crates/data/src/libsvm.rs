//! LIBSVM text-format reader and writer.
//!
//! The paper's public datasets (avazu, url, kddb, kdd12) are distributed in
//! this format from the LIBSVM dataset collection. Lines look like:
//!
//! ```text
//! +1 3:1.0 17:0.5 1024:1.0
//! -1 2:1.0 99:2.5
//! ```
//!
//! Indices are **1-based** in the file and converted to 0-based in memory.
//! Labels `0`/`1` are normalized to `−1`/`+1`.

use std::io::{BufRead, Write};

use mlstar_linalg::SparseVector;

use crate::{DataError, SparseDataset};

/// A parsed row awaiting dimension resolution: its 1-based file line (so
/// second-pass errors point at the right line even when blank/comment
/// lines were skipped), its `(index, value)` pairs, and its label.
type ParsedRow = (usize, Vec<(u32, f64)>, f64);

/// Parses a LIBSVM-format stream into a dataset.
///
/// `num_features` bounds the dimensionality; pass 0 to infer it as
/// (max index seen) and the dataset is then rebuilt with that dimension.
/// Blank lines and lines starting with `#` are skipped.
pub fn read<R: BufRead>(reader: R, num_features: usize) -> Result<SparseDataset, DataError> {
    let mut parsed: Vec<ParsedRow> = Vec::new();
    let mut max_index: usize = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let label_tok = tokens.next().ok_or_else(|| DataError::Parse {
            line: lineno + 1,
            message: "missing label".into(),
        })?;
        let raw_label: f64 = label_tok.parse().map_err(|_| DataError::Parse {
            line: lineno + 1,
            message: format!("invalid label {label_tok:?}"),
        })?;
        let label = normalize_label(raw_label).ok_or_else(|| DataError::Parse {
            line: lineno + 1,
            message: format!("label {raw_label} is not one of -1, 0, +1"),
        })?;
        let mut pairs = Vec::new();
        for tok in tokens {
            let (idx_str, val_str) = tok.split_once(':').ok_or_else(|| DataError::Parse {
                line: lineno + 1,
                message: format!("expected index:value, got {tok:?}"),
            })?;
            let idx: usize = idx_str.parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                message: format!("invalid index {idx_str:?}"),
            })?;
            if idx == 0 {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: "LIBSVM indices are 1-based; found 0".into(),
                });
            }
            let val: f64 = val_str.parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                message: format!("invalid value {val_str:?}"),
            })?;
            max_index = max_index.max(idx);
            pairs.push(((idx - 1) as u32, val));
        }
        parsed.push((lineno + 1, pairs, label));
    }

    let dim = if num_features == 0 {
        max_index
    } else {
        num_features
    };
    let mut ds = SparseDataset::empty(dim);
    for (file_line, pairs, label) in parsed {
        let row = SparseVector::from_pairs(dim, &pairs).map_err(|e| DataError::Parse {
            line: file_line,
            message: e.to_string(),
        })?;
        ds.push(row, label);
    }
    Ok(ds)
}

/// Parses LIBSVM text held in a string.
pub fn read_str(text: &str, num_features: usize) -> Result<SparseDataset, DataError> {
    read(std::io::Cursor::new(text), num_features)
}

/// Loads a LIBSVM file from disk.
pub fn read_file(
    path: impl AsRef<std::path::Path>,
    num_features: usize,
) -> Result<SparseDataset, DataError> {
    let file = std::fs::File::open(path)?;
    read(std::io::BufReader::new(file), num_features)
}

/// Writes a dataset in LIBSVM format (1-based indices, `+1`/`-1` labels).
pub fn write<W: Write>(dataset: &SparseDataset, mut writer: W) -> Result<(), DataError> {
    for (row, &label) in dataset.rows().iter().zip(dataset.labels().iter()) {
        if label > 0.0 {
            write!(writer, "+1")?;
        } else {
            write!(writer, "-1")?;
        }
        for (i, v) in row.iter() {
            write!(writer, " {}:{}", i + 1, v)?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Serializes a dataset to a LIBSVM string.
pub fn write_string(dataset: &SparseDataset) -> String {
    let mut buf = Vec::new();
    write(dataset, &mut buf).expect("writing to a Vec cannot fail"); // lint:allow(panic_in_lib): Vec<u8> io::Write is infallible
    String::from_utf8(buf).expect("LIBSVM output is ASCII") // lint:allow(panic_in_lib): the writer emits ASCII only
}

/// A streaming LIBSVM reader that yields fixed-size chunks of examples —
/// the out-of-core path for datasets larger than memory (the paper's WX
/// is 434 GB). The dimensionality must be known upfront (streaming cannot
/// infer it).
///
/// # Examples
///
/// ```
/// use mlstar_data::libsvm::ChunkedReader;
///
/// let text = "+1 1:1\n-1 2:1\n+1 1:2\n";
/// let mut reader = ChunkedReader::new(std::io::Cursor::new(text), 4, 2);
/// let first = reader.next_chunk().unwrap().unwrap();
/// assert_eq!(first.len(), 2);
/// let second = reader.next_chunk().unwrap().unwrap();
/// assert_eq!(second.len(), 1);
/// assert!(reader.next_chunk().unwrap().is_none());
/// ```
pub struct ChunkedReader<R: BufRead> {
    reader: R,
    num_features: usize,
    chunk_rows: usize,
    line_no: usize,
    buf: String,
    done: bool,
}

impl<R: BufRead> ChunkedReader<R> {
    /// Creates a chunked reader over `reader` with the given dimensionality
    /// and chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `num_features == 0` or `chunk_rows == 0`.
    pub fn new(reader: R, num_features: usize, chunk_rows: usize) -> Self {
        assert!(
            num_features > 0,
            "streaming requires a known dimensionality"
        );
        assert!(chunk_rows > 0, "chunks must hold at least one row");
        ChunkedReader {
            reader,
            num_features,
            chunk_rows,
            line_no: 0,
            buf: String::new(),
            done: false,
        }
    }

    /// Reads the next chunk; `Ok(None)` at end of input. Blank/comment
    /// lines are skipped and do not count toward the chunk size.
    pub fn next_chunk(&mut self) -> Result<Option<SparseDataset>, DataError> {
        if self.done {
            return Ok(None);
        }
        let mut chunk = SparseDataset::empty(self.num_features);
        while chunk.len() < self.chunk_rows {
            self.buf.clear();
            let n = self.reader.read_line(&mut self.buf)?;
            if n == 0 {
                self.done = true;
                break;
            }
            self.line_no += 1;
            let trimmed = self.buf.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (row, label) = parse_line(trimmed, self.num_features, self.line_no)?;
            chunk.push(row, label);
        }
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(chunk))
        }
    }
}

impl<R: BufRead> Iterator for ChunkedReader<R> {
    type Item = Result<SparseDataset, DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_chunk().transpose()
    }
}

/// Parses one LIBSVM line into a row and normalized label.
fn parse_line(
    trimmed: &str,
    num_features: usize,
    line_no: usize,
) -> Result<(SparseVector, f64), DataError> {
    let mut tokens = trimmed.split_whitespace();
    let label_tok = tokens.next().ok_or_else(|| DataError::Parse {
        line: line_no,
        message: "missing label".into(),
    })?;
    let raw_label: f64 = label_tok.parse().map_err(|_| DataError::Parse {
        line: line_no,
        message: format!("invalid label {label_tok:?}"),
    })?;
    let label = normalize_label(raw_label).ok_or_else(|| DataError::Parse {
        line: line_no,
        message: format!("label {raw_label} is not one of -1, 0, +1"),
    })?;
    let mut pairs = Vec::new();
    for tok in tokens {
        let (idx_str, val_str) = tok.split_once(':').ok_or_else(|| DataError::Parse {
            line: line_no,
            message: format!("expected index:value, got {tok:?}"),
        })?;
        let idx: usize = idx_str.parse().map_err(|_| DataError::Parse {
            line: line_no,
            message: format!("invalid index {idx_str:?}"),
        })?;
        if idx == 0 {
            return Err(DataError::Parse {
                line: line_no,
                message: "LIBSVM indices are 1-based; found 0".into(),
            });
        }
        let val: f64 = val_str.parse().map_err(|_| DataError::Parse {
            line: line_no,
            message: format!("invalid value {val_str:?}"),
        })?;
        pairs.push(((idx - 1) as u32, val));
    }
    let row = SparseVector::from_pairs(num_features, &pairs).map_err(|e| DataError::Parse {
        line: line_no,
        message: e.to_string(),
    })?;
    Ok((row, label))
}

/// Maps raw file labels to the `±1` convention: `+1`/`1` → `+1`,
/// `-1`/`0` → `−1`. Other values are rejected.
fn normalize_label(raw: f64) -> Option<f64> {
    // lint:allow(float_eq): labels are exact sentinels, not measurements
    if raw == 1.0 {
        Some(1.0)
    // lint:allow(float_eq): labels are exact sentinels, not measurements
    } else if raw == -1.0 || raw == 0.0 {
        Some(-1.0)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let text = "+1 1:1.0 3:2.5\n-1 2:0.5\n";
        let ds = read_str(text, 4).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_features(), 4);
        assert_eq!(ds.labels(), &[1.0, -1.0]);
        assert_eq!(ds.rows()[0].get(0), 1.0);
        assert_eq!(ds.rows()[0].get(2), 2.5);
        assert_eq!(ds.rows()[1].get(1), 0.5);
    }

    #[test]
    fn infers_dimension_when_zero() {
        let ds = read_str("+1 7:1\n-1 3:1\n", 0).unwrap();
        assert_eq!(ds.num_features(), 7);
    }

    #[test]
    fn normalizes_zero_one_labels() {
        let ds = read_str("1 1:1\n0 1:1\n", 2).unwrap();
        assert_eq!(ds.labels(), &[1.0, -1.0]);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let ds = read_str("# header\n\n+1 1:1\n   \n-1 1:2\n", 1).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_str("banana 1:1\n", 2),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_str("+1 notapair\n", 2),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_str("+1 0:1\n", 2),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_str("+1 2:xyz\n", 2),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_str("3 1:1\n", 2),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(read_str("\n+1\n", 2), Ok(ds) if ds.len() == 1));
    }

    #[test]
    fn rejects_out_of_bounds_index_for_fixed_dim() {
        let err = read_str("+1 9:1\n", 4).unwrap_err();
        assert!(matches!(err, DataError::Parse { .. }));
    }

    #[test]
    fn out_of_bounds_error_reports_file_line_past_blanks() {
        // The bad row is on file line 4; two skipped lines (a comment and
        // a blank) precede it, so the parsed-row index would be 2. The
        // error must name the file line.
        let err = read_str("# header\n+1 1:1\n\n+1 9:1\n", 4).unwrap_err();
        assert!(
            matches!(err, DataError::Parse { line: 4, .. }),
            "expected line 4, got {err}"
        );
        // Same shape with a mid-file blank only.
        let err = read_str("+1 1:1\n\n+1 9:1\n", 4).unwrap_err();
        assert!(
            matches!(err, DataError::Parse { line: 3, .. }),
            "expected line 3, got {err}"
        );
    }

    #[test]
    fn roundtrips_through_write() {
        let text = "+1 1:1 3:2.5\n-1 2:0.5\n";
        let ds = read_str(text, 4).unwrap();
        let out = write_string(&ds);
        let ds2 = read_str(&out, 4).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mlstar_libsvm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.libsvm");
        let ds = read_str("+1 1:1\n-1 2:1\n", 2).unwrap();
        std::fs::write(&path, write_string(&ds)).unwrap();
        let loaded = read_file(&path, 2).unwrap();
        assert_eq!(ds, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_reader_streams_in_order() {
        let ds = crate::SyntheticConfig::small("chunked", 47, 10).generate();
        let text = write_string(&ds);
        let mut chunks = Vec::new();
        for chunk in ChunkedReader::new(std::io::Cursor::new(text), 10, 10) {
            chunks.push(chunk.expect("valid chunk"));
        }
        assert_eq!(chunks.len(), 5);
        assert_eq!(chunks.last().unwrap().len(), 7);
        // Concatenation reproduces the dataset.
        let mut rebuilt = SparseDataset::empty(10);
        for c in &chunks {
            for (row, &label) in c.rows().iter().zip(c.labels().iter()) {
                rebuilt.push(row.clone(), label);
            }
        }
        assert_eq!(rebuilt.len(), ds.len());
        assert_eq!(rebuilt.labels(), ds.labels());
    }

    #[test]
    fn chunked_reader_skips_comments_and_reports_errors() {
        let text = "# header\n+1 1:1\n\nbad line\n";
        let mut r = ChunkedReader::new(std::io::Cursor::new(text), 4, 8);
        let err = r.next_chunk().unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 4, .. }), "{err}");
    }

    #[test]
    fn chunked_reader_handles_empty_input() {
        let mut r = ChunkedReader::new(std::io::Cursor::new(""), 4, 8);
        assert!(r.next_chunk().unwrap().is_none());
        assert!(r.next_chunk().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    #[should_panic(expected = "known dimensionality")]
    fn chunked_reader_rejects_zero_dim() {
        let _ = ChunkedReader::new(std::io::Cursor::new(""), 0, 8);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_file("/nonexistent/definitely/missing.libsvm", 0),
            Err(DataError::Io(_))
        ));
    }
}
