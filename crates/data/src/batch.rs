//! Seeded batch sampling and epoch ordering.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Samples mini-batches without replacement from a worker's index pool.
///
/// Each worker in the distributed systems owns one `BatchSampler`, seeded
/// from the experiment seed and the worker id, so runs are reproducible and
/// workers draw independent batches.
#[derive(Debug, Clone)]
pub struct BatchSampler {
    rng: StdRng,
}

impl BatchSampler {
    /// A sampler with the given seed.
    pub fn new(seed: u64) -> Self {
        BatchSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples `batch_size` distinct elements of `pool` (all of `pool` if
    /// `batch_size >= pool.len()`).
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn sample(&mut self, pool: &[usize], batch_size: usize) -> Vec<usize> {
        assert!(!pool.is_empty(), "cannot sample from an empty pool");
        if batch_size >= pool.len() {
            return pool.to_vec();
        }
        rand::seq::index::sample(&mut self.rng, pool.len(), batch_size)
            .into_iter()
            .map(|i| pool[i])
            .collect()
    }
}

/// Produces a freshly shuffled pass order over a worker's rows each epoch
/// (per-epoch reshuffling is standard for parallel SGD and what keeps
/// model-averaged local passes unbiased).
#[derive(Debug, Clone)]
pub struct EpochOrder {
    rng: StdRng,
}

impl EpochOrder {
    /// An order generator with the given seed.
    pub fn new(seed: u64) -> Self {
        EpochOrder {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns a shuffled copy of `pool`. Consecutive calls yield
    /// different permutations (the RNG advances).
    pub fn next_order(&mut self, pool: &[usize]) -> Vec<usize> {
        let mut order = pool.to_vec();
        order.shuffle(&mut self.rng);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_returns_distinct_pool_members() {
        let pool: Vec<usize> = (10..30).collect();
        let mut s = BatchSampler::new(1);
        let b = s.sample(&pool, 5);
        assert_eq!(b.len(), 5);
        let mut sorted = b.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        for x in &b {
            assert!(pool.contains(x));
        }
    }

    #[test]
    fn oversized_batch_returns_whole_pool() {
        let pool = vec![3, 1, 4];
        let mut s = BatchSampler::new(1);
        assert_eq!(s.sample(&pool, 10), pool);
        assert_eq!(s.sample(&pool, 3), pool);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let pool: Vec<usize> = (0..100).collect();
        let a: Vec<_> = {
            let mut s = BatchSampler::new(9);
            (0..5).map(|_| s.sample(&pool, 10)).collect()
        };
        let b: Vec<_> = {
            let mut s = BatchSampler::new(9);
            (0..5).map(|_| s.sample(&pool, 10)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<_> = {
            let mut s = BatchSampler::new(10);
            (0..5).map(|_| s.sample(&pool, 10)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn consecutive_samples_differ() {
        let pool: Vec<usize> = (0..100).collect();
        let mut s = BatchSampler::new(3);
        assert_ne!(s.sample(&pool, 10), s.sample(&pool, 10));
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_panics() {
        BatchSampler::new(0).sample(&[], 1);
    }

    #[test]
    fn epoch_order_is_permutation_and_varies() {
        let pool: Vec<usize> = (0..50).collect();
        let mut e = EpochOrder::new(4);
        let o1 = e.next_order(&pool);
        let o2 = e.next_order(&pool);
        let mut s1 = o1.clone();
        s1.sort_unstable();
        assert_eq!(s1, pool);
        assert_ne!(o1, o2, "epochs should reshuffle");
    }

    #[test]
    fn epoch_order_deterministic_per_seed() {
        let pool: Vec<usize> = (0..20).collect();
        let a = EpochOrder::new(11).next_order(&pool);
        let b = EpochOrder::new(11).next_order(&pool);
        assert_eq!(a, b);
    }
}
