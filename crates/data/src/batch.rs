//! Seeded batch sampling and epoch ordering.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Samples mini-batches without replacement from a worker's index pool.
///
/// Each worker in the distributed systems owns one `BatchSampler`, seeded
/// from the experiment seed and the worker id, so runs are reproducible and
/// workers draw independent batches.
#[derive(Debug, Clone)]
pub struct BatchSampler {
    rng: StdRng,
}

impl BatchSampler {
    /// A sampler with the given seed.
    pub fn new(seed: u64) -> Self {
        BatchSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples `batch_size` distinct elements of `pool` (all of `pool` if
    /// `batch_size >= pool.len()`).
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn sample(&mut self, pool: &[usize], batch_size: usize) -> Vec<usize> {
        assert!(!pool.is_empty(), "cannot sample from an empty pool");
        if batch_size >= pool.len() {
            return pool.to_vec();
        }
        rand::seq::index::sample(&mut self.rng, pool.len(), batch_size)
            .into_iter()
            .map(|i| pool[i])
            .collect()
    }

    /// Exports the sampler's RNG position (for checkpointing).
    pub fn export_state(&self) -> [u8; 41] {
        self.rng.export_state()
    }

    /// Rebuilds a sampler mid-stream from [`BatchSampler::export_state`];
    /// `None` for states no reachable RNG can produce.
    pub fn restore_state(state: &[u8; 41]) -> Option<Self> {
        StdRng::restore_state(state).map(|rng| BatchSampler { rng })
    }
}

/// Produces a freshly shuffled pass order over a worker's rows each epoch
/// (per-epoch reshuffling is standard for parallel SGD and what keeps
/// model-averaged local passes unbiased).
#[derive(Debug, Clone)]
pub struct EpochOrder {
    rng: StdRng,
}

impl EpochOrder {
    /// An order generator with the given seed.
    pub fn new(seed: u64) -> Self {
        EpochOrder {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns a shuffled copy of `pool`. Consecutive calls yield
    /// different permutations (the RNG advances).
    pub fn next_order(&mut self, pool: &[usize]) -> Vec<usize> {
        let mut order = pool.to_vec();
        order.shuffle(&mut self.rng);
        order
    }

    /// Exports the generator's RNG position (for checkpointing).
    pub fn export_state(&self) -> [u8; 41] {
        self.rng.export_state()
    }

    /// Rebuilds an order generator mid-stream from
    /// [`EpochOrder::export_state`]; `None` for states no reachable RNG
    /// can produce.
    pub fn restore_state(state: &[u8; 41]) -> Option<Self> {
        StdRng::restore_state(state).map(|rng| EpochOrder { rng })
    }
}

/// Draws query rows for a serving workload with optional hot-key skew.
///
/// A seeded shuffle of the row indices picks a "hot set" (the shuffle's
/// prefix); each draw then flips a seeded coin between the hot set and
/// the full dataset. Real scoring traffic is rarely uniform — a few
/// entities dominate — and the hot fraction models that skew while
/// keeping every draw reproducible.
#[derive(Debug, Clone)]
pub struct RowSampler {
    order: Vec<usize>,
    hot_len: usize,
}

impl RowSampler {
    /// A sampler over `num_rows` rows where a seeded `hot_fraction` of
    /// them (at least one, when the fraction is positive) forms the hot
    /// set.
    ///
    /// # Panics
    ///
    /// Panics if `num_rows == 0` or `hot_fraction` is outside `[0, 1]`.
    pub fn new(num_rows: usize, hot_fraction: f64, seed: u64) -> Self {
        assert!(num_rows > 0, "cannot sample rows from an empty dataset");
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot_fraction must be in [0, 1] (got {hot_fraction})"
        );
        let mut order: Vec<usize> = (0..num_rows).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let hot_len = if hot_fraction > 0.0 {
            ((num_rows as f64 * hot_fraction).round() as usize).clamp(1, num_rows)
        } else {
            0
        };
        RowSampler { order, hot_len }
    }

    /// The hot-set row indices (the shuffle prefix).
    pub fn hot_rows(&self) -> &[usize] {
        &self.order[..self.hot_len]
    }

    /// Draws one row index: with probability `hot_prob` uniformly from
    /// the hot set (when non-empty), otherwise uniformly from all rows.
    ///
    /// # Panics
    ///
    /// Panics if `hot_prob` is outside `[0, 1]`.
    pub fn draw<R: rand::Rng>(&self, rng: &mut R, hot_prob: f64) -> usize {
        if self.hot_len > 0 && rng.gen_bool(hot_prob) {
            self.order[rng.gen_range(0..self.hot_len)]
        } else {
            self.order[rng.gen_range(0..self.order.len())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_returns_distinct_pool_members() {
        let pool: Vec<usize> = (10..30).collect();
        let mut s = BatchSampler::new(1);
        let b = s.sample(&pool, 5);
        assert_eq!(b.len(), 5);
        let mut sorted = b.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        for x in &b {
            assert!(pool.contains(x));
        }
    }

    #[test]
    fn oversized_batch_returns_whole_pool() {
        let pool = vec![3, 1, 4];
        let mut s = BatchSampler::new(1);
        assert_eq!(s.sample(&pool, 10), pool);
        assert_eq!(s.sample(&pool, 3), pool);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let pool: Vec<usize> = (0..100).collect();
        let a: Vec<_> = {
            let mut s = BatchSampler::new(9);
            (0..5).map(|_| s.sample(&pool, 10)).collect()
        };
        let b: Vec<_> = {
            let mut s = BatchSampler::new(9);
            (0..5).map(|_| s.sample(&pool, 10)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<_> = {
            let mut s = BatchSampler::new(10);
            (0..5).map(|_| s.sample(&pool, 10)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn consecutive_samples_differ() {
        let pool: Vec<usize> = (0..100).collect();
        let mut s = BatchSampler::new(3);
        assert_ne!(s.sample(&pool, 10), s.sample(&pool, 10));
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_panics() {
        BatchSampler::new(0).sample(&[], 1);
    }

    #[test]
    fn sampler_state_roundtrip_resumes_mid_stream() {
        let pool: Vec<usize> = (0..100).collect();
        let mut s = BatchSampler::new(5);
        let _ = s.sample(&pool, 10);
        let mut restored = BatchSampler::restore_state(&s.export_state()).unwrap();
        for _ in 0..5 {
            assert_eq!(s.sample(&pool, 10), restored.sample(&pool, 10));
        }
    }

    #[test]
    fn epoch_order_state_roundtrip_resumes_mid_stream() {
        let pool: Vec<usize> = (0..40).collect();
        let mut e = EpochOrder::new(6);
        let _ = e.next_order(&pool);
        let mut restored = EpochOrder::restore_state(&e.export_state()).unwrap();
        for _ in 0..5 {
            assert_eq!(e.next_order(&pool), restored.next_order(&pool));
        }
        // Invalid states are rejected, not misinterpreted.
        let mut bad = e.export_state();
        bad[40] = 99;
        assert!(EpochOrder::restore_state(&bad).is_none());
        assert!(BatchSampler::restore_state(&bad).is_none());
    }

    #[test]
    fn epoch_order_is_permutation_and_varies() {
        let pool: Vec<usize> = (0..50).collect();
        let mut e = EpochOrder::new(4);
        let o1 = e.next_order(&pool);
        let o2 = e.next_order(&pool);
        let mut s1 = o1.clone();
        s1.sort_unstable();
        assert_eq!(s1, pool);
        assert_ne!(o1, o2, "epochs should reshuffle");
    }

    #[test]
    fn epoch_order_deterministic_per_seed() {
        let pool: Vec<usize> = (0..20).collect();
        let a = EpochOrder::new(11).next_order(&pool);
        let b = EpochOrder::new(11).next_order(&pool);
        assert_eq!(a, b);
    }

    #[test]
    fn row_sampler_hot_set_is_seeded_prefix() {
        let s = RowSampler::new(100, 0.1, 7);
        assert_eq!(s.hot_rows().len(), 10);
        assert_eq!(RowSampler::new(100, 0.1, 7).hot_rows(), s.hot_rows());
        assert_ne!(RowSampler::new(100, 0.1, 8).hot_rows(), s.hot_rows());
        // A positive fraction always yields at least one hot row.
        assert_eq!(RowSampler::new(3, 0.01, 7).hot_rows().len(), 1);
        assert_eq!(RowSampler::new(3, 0.0, 7).hot_rows().len(), 0);
    }

    #[test]
    fn row_sampler_skews_toward_hot_rows() {
        let s = RowSampler::new(1000, 0.01, 42);
        let hot: std::collections::BTreeSet<usize> = s.hot_rows().iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let draws = 5000;
        let hot_hits = (0..draws)
            .filter(|_| hot.contains(&s.draw(&mut rng, 0.9)))
            .count();
        // ~90% of draws hit the 1% hot set (plus ~1% uniform spillover).
        assert!(hot_hits > draws * 8 / 10, "hot hits {hot_hits}/{draws}");
        let uniform_hits = (0..draws)
            .filter(|_| hot.contains(&s.draw(&mut rng, 0.0)))
            .count();
        assert!(uniform_hits < draws / 10, "uniform hits {uniform_hits}");
        for _ in 0..200 {
            assert!(s.draw(&mut rng, 0.5) < 1000);
        }
    }

    #[test]
    fn row_sampler_draws_are_deterministic() {
        let s = RowSampler::new(50, 0.2, 3);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a: Vec<usize> = (0..100).map(|_| s.draw(&mut r1, 0.5)).collect();
        let b: Vec<usize> = (0..100).map(|_| s.draw(&mut r2, 0.5)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn row_sampler_rejects_empty() {
        let _ = RowSampler::new(0, 0.5, 1);
    }
}
