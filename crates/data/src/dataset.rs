//! In-memory sparse classification datasets.

use mlstar_linalg::SparseVector;
use serde::{Deserialize, Serialize};

use crate::DataError;

/// A sparse classification dataset: one [`SparseVector`] row per example
/// plus a `±1` label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseDataset {
    num_features: usize,
    rows: Vec<SparseVector>,
    labels: Vec<f64>,
}

/// Summary statistics in the shape of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of examples (`#Instances` in Table I).
    pub instances: usize,
    /// Feature dimensionality (`#Features` in Table I).
    pub features: usize,
    /// Total nonzeros across all rows.
    pub total_nnz: usize,
    /// Average nonzeros per row.
    pub avg_nnz: f64,
    /// Approximate in-memory size in bytes (`Size` in Table I).
    pub size_bytes: usize,
    /// Fraction of examples labeled `+1`.
    pub positive_fraction: f64,
    /// `features > instances` — the paper's "underdetermined" datasets
    /// (url, kddb) versus "determined" (avazu, kdd12, WX).
    pub underdetermined: bool,
}

impl SparseDataset {
    /// Creates a dataset, validating that every row has dimension
    /// `num_features` and that there is one label per row.
    pub fn new(
        num_features: usize,
        rows: Vec<SparseVector>,
        labels: Vec<f64>,
    ) -> Result<Self, DataError> {
        if rows.len() != labels.len() {
            return Err(DataError::Inconsistent(format!(
                "{} rows but {} labels",
                rows.len(),
                labels.len()
            )));
        }
        for (i, r) in rows.iter().enumerate() {
            if r.dim() != num_features {
                return Err(DataError::Inconsistent(format!(
                    "row {i} has dimension {} but dataset declares {num_features}",
                    r.dim()
                )));
            }
        }
        Ok(SparseDataset {
            num_features,
            rows,
            labels,
        })
    }

    /// An empty dataset of the given dimensionality.
    pub fn empty(num_features: usize) -> Self {
        SparseDataset {
            num_features,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Appends an example.
    ///
    /// # Panics
    ///
    /// Panics if the row dimension disagrees with the dataset.
    pub fn push(&mut self, row: SparseVector, label: f64) {
        assert_eq!(row.dim(), self.num_features, "row dimension mismatch");
        self.rows.push(row);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The example rows.
    pub fn rows(&self) -> &[SparseVector] {
        &self.rows
    }

    /// The labels, parallel to [`SparseDataset::rows`].
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// A new dataset containing the rows selected by `indices` (cloned).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn subset(&self, indices: &[usize]) -> SparseDataset {
        let rows = indices.iter().map(|&i| self.rows[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        SparseDataset {
            num_features: self.num_features,
            rows,
            labels,
        }
    }

    /// Total number of stored nonzeros.
    pub fn total_nnz(&self) -> usize {
        self.rows.iter().map(SparseVector::nnz).sum()
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(SparseVector::size_bytes)
            .sum::<usize>()
            + self.labels.len() * std::mem::size_of::<f64>()
    }

    /// Table-I style statistics.
    pub fn stats(&self) -> DatasetStats {
        let n = self.len();
        let total_nnz = self.total_nnz();
        let positives = self.labels.iter().filter(|&&y| y > 0.0).count();
        DatasetStats {
            instances: n,
            features: self.num_features,
            total_nnz,
            avg_nnz: if n == 0 {
                0.0
            } else {
                total_nnz as f64 / n as f64
            },
            size_bytes: self.size_bytes(),
            positive_fraction: if n == 0 {
                0.0
            } else {
                positives as f64 / n as f64
            },
            underdetermined: self.num_features > n,
        }
    }
}

impl DatasetStats {
    /// Human-readable size (e.g. `"7.4GB"`, `"21MB"`), matching Table I's
    /// `Size` column format.
    pub fn size_human(&self) -> String {
        let b = self.size_bytes as f64;
        const KB: f64 = 1024.0;
        const MB: f64 = 1024.0 * 1024.0;
        const GB: f64 = 1024.0 * 1024.0 * 1024.0;
        if b >= GB {
            format!("{:.1}GB", b / GB)
        } else if b >= MB {
            format!("{:.1}MB", b / MB)
        } else if b >= KB {
            format!("{:.1}KB", b / KB)
        } else {
            format!("{b:.0}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(dim: usize, pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(dim, pairs).unwrap()
    }

    #[test]
    fn new_validates_shapes() {
        let err = SparseDataset::new(4, vec![row(4, &[])], vec![]).unwrap_err();
        assert!(err.to_string().contains("1 rows but 0 labels"));
        let err = SparseDataset::new(4, vec![row(3, &[])], vec![1.0]).unwrap_err();
        assert!(err.to_string().contains("dimension 3"));
    }

    #[test]
    fn push_and_accessors() {
        let mut ds = SparseDataset::empty(4);
        assert!(ds.is_empty());
        ds.push(row(4, &[(0, 1.0), (2, 1.0)]), 1.0);
        ds.push(row(4, &[(1, 1.0)]), -1.0);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_features(), 4);
        assert_eq!(ds.labels(), &[1.0, -1.0]);
        assert_eq!(ds.rows()[1].nnz(), 1);
        assert_eq!(ds.total_nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_rejects_wrong_dim() {
        let mut ds = SparseDataset::empty(4);
        ds.push(row(3, &[]), 1.0);
    }

    #[test]
    fn subset_selects_rows() {
        let mut ds = SparseDataset::empty(2);
        ds.push(row(2, &[(0, 1.0)]), 1.0);
        ds.push(row(2, &[(1, 1.0)]), -1.0);
        ds.push(row(2, &[]), 1.0);
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[1.0, 1.0]);
        assert_eq!(sub.rows()[1].nnz(), 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let mut ds = SparseDataset::empty(10);
        ds.push(row(10, &[(0, 1.0), (1, 1.0)]), 1.0);
        ds.push(row(10, &[(2, 1.0)]), -1.0);
        let s = ds.stats();
        assert_eq!(s.instances, 2);
        assert_eq!(s.features, 10);
        assert_eq!(s.total_nnz, 3);
        assert!((s.avg_nnz - 1.5).abs() < 1e-12);
        assert!((s.positive_fraction - 0.5).abs() < 1e-12);
        assert!(s.underdetermined, "10 features > 2 instances");
        assert!(s.size_bytes > 0);
    }

    #[test]
    fn determinedness_flips_with_shape() {
        let mut ds = SparseDataset::empty(2);
        for i in 0..5 {
            ds.push(row(2, &[(0, i as f64)]), 1.0);
        }
        assert!(!ds.stats().underdetermined);
    }

    #[test]
    fn size_human_formats() {
        let mk = |size_bytes| DatasetStats {
            instances: 0,
            features: 0,
            total_nnz: 0,
            avg_nnz: 0.0,
            size_bytes,
            positive_fraction: 0.0,
            underdetermined: false,
        };
        assert_eq!(mk(512).size_human(), "512B");
        assert_eq!(mk(2048).size_human(), "2.0KB");
        assert_eq!(mk(3 * 1024 * 1024).size_human(), "3.0MB");
        assert_eq!(mk(5_368_709_120).size_human(), "5.0GB");
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SparseDataset::empty(3).stats();
        assert_eq!(s.instances, 0);
        assert_eq!(s.avg_nnz, 0.0);
        assert_eq!(s.positive_fraction, 0.0);
    }
}
