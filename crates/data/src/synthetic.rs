//! Seeded synthetic sparse classification problems.
//!
//! The generator produces linear classification data with the structural
//! properties that drive the convergence shapes in the paper:
//!
//! * **Power-law feature popularity** — a few features appear in many
//!   rows, most appear in few (CTR one-hot data looks like this). The
//!   skew controls conditioning.
//! * **Determined vs. underdetermined shape** — with more features than
//!   instances (url, kddb) the unregularized problem has many minimizers
//!   and plain GD stalls; with L2 it becomes well-posed again. This is
//!   exactly the contrast Figures 4 and 5 explore.
//! * **A planted linear model** — labels are the sign of `w*·x` plus
//!   noise, so the hinge/logistic objectives have informative minima.

use mlstar_linalg::SparseVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::SparseDataset;

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Human-readable name (used in benchmark tables, e.g. `"avazu-like"`).
    pub name: String,
    /// Number of examples to generate.
    pub num_instances: usize,
    /// Feature dimensionality.
    pub num_features: usize,
    /// Average number of nonzeros per row (actual counts are uniform in
    /// `[avg/2, 3·avg/2]`, clamped to `[1, num_features]`).
    pub avg_nnz: usize,
    /// Power-law exponent for feature popularity (`≥ 1`); larger values
    /// concentrate mass on a few popular features.
    pub feature_skew: f64,
    /// Standard deviation of Gaussian noise added to the planted margin
    /// before taking the sign.
    pub margin_noise: f64,
    /// Probability of flipping the resulting label.
    pub flip_prob: f64,
    /// If true feature values are all `1.0` (one-hot style); otherwise
    /// they are uniform in `[0.5, 1.5]`.
    pub binary_features: bool,
    /// Multiplier on the planted model's weights. Values > 1 make the
    /// classes more separable (larger geometric margins), which keeps the
    /// L2-regularized optimum meaningfully below the zero-model loss.
    pub margin_scale: f64,
    /// Number of *informative* features (0 = all features carry weight).
    /// Real CTR/KDD data concentrates signal on popular features; a small
    /// informative set keeps the planted model's L2 norm moderate, so the
    /// L2 = 0.1 experiments have a nontrivial optimum (as in the paper).
    pub informative_features: usize,
    /// Probability that a nonzero's index is drawn uniformly from the
    /// informative set instead of the global power law. Ensures most rows
    /// actually touch the signal.
    pub popular_fraction: f64,
    /// RNG seed. The same config always yields the same dataset.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A small default problem, useful in tests and examples.
    pub fn small(name: &str, num_instances: usize, num_features: usize) -> Self {
        SyntheticConfig {
            name: name.to_owned(),
            num_instances,
            num_features,
            avg_nnz: (num_features / 10).clamp(2, 50),
            feature_skew: 1.5,
            margin_noise: 0.1,
            flip_prob: 0.02,
            binary_features: true,
            margin_scale: 3.0,
            informative_features: 0,
            popular_fraction: 0.0,
            seed: 42,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy scaled down by `factor` in both instances and
    /// features (floors of 16 instances / 8 features), for fast tests.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        let f = factor.max(1);
        self.num_instances = (self.num_instances / f).max(16);
        self.num_features = (self.num_features / f).max(8);
        self.avg_nnz = self.avg_nnz.clamp(1, self.num_features);
        self.informative_features = self.informative_features.min(self.num_features);
        self
    }

    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics if `num_instances`, `num_features` or `avg_nnz` is zero, or
    /// if `feature_skew < 1.0`.
    pub fn generate(&self) -> SparseDataset {
        assert!(self.num_instances > 0, "num_instances must be positive");
        assert!(self.num_features > 0, "num_features must be positive");
        assert!(self.avg_nnz > 0, "avg_nnz must be positive");
        assert!(self.feature_skew >= 1.0, "feature_skew must be ≥ 1");

        assert!(
            (0.0..=1.0).contains(&self.popular_fraction),
            "popular_fraction must be in [0, 1]"
        );
        assert!(
            self.informative_features <= self.num_features,
            "informative set cannot exceed the feature space"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Planted model: Gaussian weights scaled so margins are
        // O(margin_scale). With an informative subset, only its features
        // carry weight and the scale normalizes by the expected number of
        // informative hits per row.
        let c = if self.informative_features == 0 {
            self.num_features
        } else {
            self.informative_features
        };
        let expected_hits = if self.informative_features == 0 {
            self.avg_nnz as f64
        } else {
            let p = self.popular_fraction;
            let tail_hit = (c as f64 / self.num_features as f64).powf(1.0 / self.feature_skew);
            (self.avg_nnz as f64 * (p + (1.0 - p) * tail_hit)).max(0.25)
        };
        let scale = self.margin_scale / expected_hits.sqrt();
        let truth: Vec<f64> = (0..self.num_features)
            .map(|j| if j < c { normal(&mut rng) * scale } else { 0.0 })
            .collect();

        let mut ds = SparseDataset::empty(self.num_features);
        let lo = (self.avg_nnz / 2).max(1);
        let hi = (self.avg_nnz + self.avg_nnz / 2).clamp(lo, self.num_features);
        let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(hi);
        for _ in 0..self.num_instances {
            let nnz = rng.gen_range(lo..=hi);
            pairs.clear();
            for _ in 0..nnz {
                let idx = if self.informative_features > 0 && rng.gen_bool(self.popular_fraction) {
                    rng.gen_range(0..self.informative_features)
                } else {
                    power_law_index(&mut rng, self.num_features, self.feature_skew)
                };
                let val = if self.binary_features {
                    1.0
                } else {
                    rng.gen_range(0.5..1.5)
                };
                pairs.push((idx as u32, val));
            }
            // from_pairs merges duplicate indices by summation, which for
            // binary features models repeated categorical hits.
            let row = SparseVector::from_pairs(self.num_features, &pairs)
                .expect("generated pairs are in bounds"); // lint:allow(panic_in_lib): indices are drawn modulo num_features
            let mut margin: f64 = row.iter().map(|(i, v)| truth[i] * v).sum();
            margin += self.margin_noise * normal(&mut rng);
            let mut label = if margin >= 0.0 { 1.0 } else { -1.0 };
            if rng.gen_bool(self.flip_prob.clamp(0.0, 1.0)) {
                label = -label;
            }
            ds.push(row, label);
        }
        ds
    }
}

/// Samples a feature index in `[0, d)` with power-law popularity: the CDF
/// trick `i = ⌊d·u^γ⌋` concentrates mass near index 0 for `γ > 1`.
pub(crate) fn power_law_index(rng: &mut StdRng, d: usize, gamma: f64) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    ((d as f64) * u.powf(gamma)) as usize % d
}

/// A standard normal draw via Box–Muller (the allowed-crate set excludes
/// `rand_distr`).
pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticConfig {
        SyntheticConfig::small("tiny", 200, 50)
    }

    #[test]
    fn generates_requested_shape() {
        let ds = tiny().generate();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.num_features(), 50);
        for row in ds.rows() {
            assert!(row.nnz() >= 1);
            row.validate().expect("rows satisfy sparse invariants");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = tiny().generate();
        let b = tiny().generate();
        assert_eq!(a, b);
        let c = tiny().with_seed(7).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn labels_are_plus_minus_one_and_mixed() {
        let ds = tiny().generate();
        let pos = ds.labels().iter().filter(|&&y| y == 1.0).count();
        let neg = ds.labels().iter().filter(|&&y| y == -1.0).count();
        assert_eq!(pos + neg, ds.len());
        assert!(pos > 10 && neg > 10, "pos={pos} neg={neg}");
    }

    #[test]
    fn power_law_concentrates_on_low_indices() {
        let mut cfg = tiny();
        cfg.num_instances = 2000;
        cfg.feature_skew = 3.0;
        let ds = cfg.generate();
        let mut counts = vec![0usize; cfg.num_features];
        for row in ds.rows() {
            for (i, _) in row.iter() {
                counts[i] += 1;
            }
        }
        let low: usize = counts[..10].iter().sum();
        let high: usize = counts[40..].iter().sum();
        assert!(low > 4 * high.max(1), "low={low} high={high}");
    }

    #[test]
    fn binary_features_have_integer_values() {
        let ds = tiny().generate();
        for row in ds.rows() {
            for (_, v) in row.iter() {
                // Duplicated indices sum, so values are positive integers.
                assert!(v >= 1.0 && v.fract() == 0.0, "value {v}");
            }
        }
    }

    #[test]
    fn non_binary_features_vary() {
        let mut cfg = tiny();
        cfg.binary_features = false;
        let ds = cfg.generate();
        let any_fractional = ds
            .rows()
            .iter()
            .flat_map(|r| r.values().iter())
            .any(|v| v.fract() != 0.0);
        assert!(any_fractional);
    }

    #[test]
    fn scaled_down_shrinks_but_stays_valid() {
        let big = SyntheticConfig::small("big", 10_000, 1_000);
        let small = big.clone().scaled_down(100);
        assert_eq!(small.num_instances, 100);
        assert_eq!(small.num_features, 10);
        assert!(small.avg_nnz <= small.num_features);
        let ds = small.generate();
        assert_eq!(ds.len(), 100);
    }

    #[test]
    fn planted_model_is_learnable() {
        // A linear model must reach high accuracy on low-noise data;
        // checked via a quick perceptron-style pass.
        let mut cfg = tiny();
        cfg.margin_noise = 0.0;
        cfg.flip_prob = 0.0;
        let ds = cfg.generate();
        let mut w = mlstar_linalg::DenseVector::zeros(cfg.num_features);
        for _ in 0..50 {
            for (row, &y) in ds.rows().iter().zip(ds.labels().iter()) {
                if y * w.dot_sparse(row) <= 0.0 {
                    w.axpy_sparse(y, row);
                }
            }
        }
        let correct = ds
            .rows()
            .iter()
            .zip(ds.labels().iter())
            .filter(|(r, &y)| y * w.dot_sparse(r) > 0.0)
            .count();
        assert!(
            correct as f64 > 0.9 * ds.len() as f64,
            "perceptron fits {}/{}",
            correct,
            ds.len()
        );
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
