//! Scaled-down look-alikes of the paper's five datasets (Table I).
//!
//! The paper's datasets are up to 434 GB; the presets here scale instance
//! counts by ~1/1000 and feature counts by ~1/1000 while preserving the
//! property that drives the experimental contrasts: whether the problem is
//! *determined* (more instances than features — avazu, kdd12, WX) or
//! *underdetermined* (more features than instances — url, kddb).
//!
//! | Preset | paper n | paper d | ours n | ours d | shape |
//! |---|---|---|---|---|---|
//! | avazu-like | 40,428,967 | 1,000,000 | 40,429 | 1,000 | determined |
//! | url-like | 2,396,130 | 3,231,961 | 2,396 | 3,232 | underdetermined |
//! | kddb-like | 19,264,097 | 29,890,095 | 19,264 | 29,890 | underdetermined |
//! | kdd12-like | 149,639,105 | 54,686,452 | 74,820 | 27,343 | determined |
//! | wx-like | 231,937,380 | 51,121,518 | 115,969 | 25,561 | determined |
//!
//! (kdd12 and WX are scaled 2000× to keep full benchmark sweeps fast;
//! their determined shape and relative model sizes are preserved.)

use serde::{Deserialize, Serialize};

use crate::SyntheticConfig;

/// Original Table I statistics for a paper dataset, for side-by-side
/// reporting in the Table I benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperDatasetStats {
    /// Dataset name as it appears in the paper.
    pub name: &'static str,
    /// `#Instances` from Table I.
    pub instances: u64,
    /// `#Features` from Table I.
    pub features: u64,
    /// `Size` from Table I.
    pub size: &'static str,
}

/// Table I of the paper, verbatim.
pub fn paper_table1() -> Vec<PaperDatasetStats> {
    vec![
        PaperDatasetStats {
            name: "avazu",
            instances: 40_428_967,
            features: 1_000_000,
            size: "7.4GB",
        },
        PaperDatasetStats {
            name: "url",
            instances: 2_396_130,
            features: 3_231_961,
            size: "2.1GB",
        },
        PaperDatasetStats {
            name: "kddb",
            instances: 19_264_097,
            features: 29_890_095,
            size: "4.8GB",
        },
        PaperDatasetStats {
            name: "kdd12",
            instances: 149_639_105,
            features: 54_686_452,
            size: "21GB",
        },
        PaperDatasetStats {
            name: "WX",
            instances: 231_937_380,
            features: 51_121_518,
            size: "434GB",
        },
    ]
}

/// avazu-like: determined, low-dimensional, CTR-style one-hot rows.
pub fn avazu_like() -> SyntheticConfig {
    SyntheticConfig {
        name: "avazu-like".to_owned(),
        num_instances: 40_429,
        num_features: 1_000,
        avg_nnz: 15,
        feature_skew: 2.0,
        margin_noise: 0.3,
        flip_prob: 0.02,
        binary_features: true,
        margin_scale: 2.5,
        informative_features: 30,
        popular_fraction: 0.35,
        seed: 0xA7A2_0001,
    }
}

/// url-like: underdetermined (d > n), denser rows, real-valued features.
pub fn url_like() -> SyntheticConfig {
    SyntheticConfig {
        name: "url-like".to_owned(),
        num_instances: 2_396,
        num_features: 3_232,
        avg_nnz: 80,
        feature_skew: 1.3,
        margin_noise: 0.1,
        flip_prob: 0.01,
        binary_features: false,
        margin_scale: 2.5,
        informative_features: 60,
        popular_fraction: 0.35,
        seed: 0xA7A2_0002,
    }
}

/// kddb-like: underdetermined and very high-dimensional.
pub fn kddb_like() -> SyntheticConfig {
    SyntheticConfig {
        name: "kddb-like".to_owned(),
        num_instances: 19_264,
        num_features: 29_890,
        avg_nnz: 30,
        feature_skew: 1.4,
        margin_noise: 0.1,
        flip_prob: 0.02,
        binary_features: true,
        margin_scale: 2.5,
        informative_features: 50,
        popular_fraction: 0.35,
        seed: 0xA7A2_0003,
    }
}

/// kdd12-like: determined, the largest public model in the study.
pub fn kdd12_like() -> SyntheticConfig {
    SyntheticConfig {
        name: "kdd12-like".to_owned(),
        num_instances: 74_820,
        num_features: 27_343,
        avg_nnz: 12,
        feature_skew: 1.8,
        margin_noise: 0.3,
        flip_prob: 0.02,
        binary_features: true,
        margin_scale: 2.5,
        informative_features: 40,
        popular_fraction: 0.35,
        seed: 0xA7A2_0004,
    }
}

/// wx-like: the Tencent production workload — determined, largest volume.
pub fn wx_like() -> SyntheticConfig {
    SyntheticConfig {
        name: "wx-like".to_owned(),
        num_instances: 115_969,
        num_features: 25_561,
        avg_nnz: 25,
        feature_skew: 1.6,
        margin_noise: 0.4,
        flip_prob: 0.05,
        binary_features: true,
        margin_scale: 2.0,
        informative_features: 40,
        popular_fraction: 0.3,
        seed: 0xA7A2_0005,
    }
}

/// The four public presets in Figure 4/5 order.
pub fn public_presets() -> Vec<SyntheticConfig> {
    vec![avazu_like(), url_like(), kddb_like(), kdd12_like()]
}

/// All five presets in Table I order.
pub fn all_presets() -> Vec<SyntheticConfig> {
    vec![
        avazu_like(),
        url_like(),
        kddb_like(),
        kdd12_like(),
        wx_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinedness_matches_the_paper() {
        let check = |cfg: SyntheticConfig, underdetermined: bool| {
            assert_eq!(
                cfg.num_features > cfg.num_instances,
                underdetermined,
                "{}",
                cfg.name
            );
        };
        check(avazu_like(), false);
        check(url_like(), true);
        check(kddb_like(), true);
        check(kdd12_like(), false);
        check(wx_like(), false);
    }

    #[test]
    fn relative_ordering_of_sizes_preserved() {
        // WX has the most instances; kdd12 the biggest public dataset;
        // avazu the smallest feature space.
        assert!(wx_like().num_instances > kdd12_like().num_instances);
        assert!(kdd12_like().num_instances > avazu_like().num_instances);
        let min_d = all_presets().iter().map(|c| c.num_features).min().unwrap();
        assert_eq!(min_d, avazu_like().num_features);
    }

    #[test]
    fn paper_table1_has_five_rows_matching_presets() {
        let t = paper_table1();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].name, "avazu");
        assert_eq!(t[4].size, "434GB");
        // Scaled presets divide instances by roughly their scale factor.
        let ratio0 = t[0].instances as f64 / avazu_like().num_instances as f64;
        assert!((ratio0 - 1000.0).abs() < 1.0, "avazu ratio {ratio0}");
        let ratio3 = t[3].instances as f64 / kdd12_like().num_instances as f64;
        assert!((ratio3 - 2000.0).abs() < 1.0, "kdd12 ratio {ratio3}");
    }

    #[test]
    fn scaled_presets_generate_quickly_and_validly() {
        // Use heavy scaling in tests; full generation is exercised by the
        // benches.
        for cfg in all_presets() {
            let ds = cfg.scaled_down(64).generate();
            assert!(ds.len() >= 16);
            let stats = ds.stats();
            assert!(stats.avg_nnz >= 1.0);
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: Vec<u64> = all_presets().iter().map(|c| c.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }
}
