//! Synthetic platform job traces behind the Figure 1 workload-share table.
//!
//! Figure 1 of the paper is observational: a survey of the Tencent Machine
//! Learning Platform showing that 51% of ML workloads run on TensorFlow,
//! 24% on Angel, 22% on XGBoost and only 3% on MLlib — while >80% of data
//! passes through Spark for ETL. That cannot be *measured* here, so this
//! module regenerates the *table* from a seeded synthetic job trace with
//! those target shares, making the Figure 1 bench a runnable end-to-end
//! pipeline (documented as illustrative in `DESIGN.md`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The ML systems in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlSystem {
    /// TensorFlow (51% in the paper's survey).
    TensorFlow,
    /// Angel (24%).
    Angel,
    /// XGBoost (22%).
    XGBoost,
    /// Spark MLlib (3%).
    MLlib,
}

impl MlSystem {
    /// All systems in Figure 1 order.
    pub const ALL: [MlSystem; 4] = [
        MlSystem::TensorFlow,
        MlSystem::Angel,
        MlSystem::XGBoost,
        MlSystem::MLlib,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MlSystem::TensorFlow => "TensorFlow",
            MlSystem::Angel => "Angel",
            MlSystem::XGBoost => "XGBoost",
            MlSystem::MLlib => "MLlib",
        }
    }
}

/// One ML training job on the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job identifier.
    pub id: u64,
    /// The ML system the job trains on.
    pub system: MlSystem,
    /// Input size in GB.
    pub data_gb: f64,
    /// Whether the input was extracted/transformed with Spark first (the
    /// ">80% of data" claim in the paper's introduction).
    pub spark_etl: bool,
}

/// Configuration of the trace generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Target share per system, in [`MlSystem::ALL`] order; must sum to ~1.
    pub shares: [f64; 4],
    /// Probability a job's input went through Spark ETL.
    pub spark_etl_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    /// The paper's Figure 1 shares and the ">80% via Spark" ETL rate.
    fn default() -> Self {
        WorkloadConfig {
            num_jobs: 10_000,
            shares: [0.51, 0.24, 0.22, 0.03],
            spark_etl_prob: 0.82,
            seed: 2019,
        }
    }
}

/// Share analysis of a trace: the regenerated Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareReport {
    /// `(system, job share)` rows in [`MlSystem::ALL`] order.
    pub system_shares: Vec<(MlSystem, f64)>,
    /// Fraction of total *data volume* that passed through Spark ETL.
    pub spark_etl_data_fraction: f64,
    /// Total jobs analyzed.
    pub total_jobs: usize,
}

/// Generates a seeded job trace with the configured shares.
///
/// # Panics
///
/// Panics if shares are negative or sum to something far from 1.
pub fn generate_trace(cfg: &WorkloadConfig) -> Vec<Job> {
    let total: f64 = cfg.shares.iter().sum();
    assert!(
        cfg.shares.iter().all(|s| *s >= 0.0) && (total - 1.0).abs() < 1e-6,
        "shares must be nonnegative and sum to 1 (got {total})"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut jobs = Vec::with_capacity(cfg.num_jobs);
    for id in 0..cfg.num_jobs as u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        let mut system = MlSystem::MLlib;
        for (i, &share) in cfg.shares.iter().enumerate() {
            acc += share;
            if u < acc {
                system = MlSystem::ALL[i];
                break;
            }
        }
        // Log-uniform data sizes from 100 MB to 1 TB.
        let log_gb = rng.gen_range(-1.0f64..3.0);
        jobs.push(Job {
            id,
            system,
            data_gb: 10f64.powf(log_gb),
            spark_etl: rng.gen_bool(cfg.spark_etl_prob),
        });
    }
    jobs
}

/// Computes the Figure 1 share table from a trace.
///
/// # Panics
///
/// Panics if `jobs` is empty.
pub fn analyze(jobs: &[Job]) -> ShareReport {
    assert!(!jobs.is_empty(), "cannot analyze an empty trace");
    let n = jobs.len() as f64;
    let system_shares = MlSystem::ALL
        .iter()
        .map(|&s| {
            let count = jobs.iter().filter(|j| j.system == s).count();
            (s, count as f64 / n)
        })
        .collect();
    let total_gb: f64 = jobs.iter().map(|j| j.data_gb).sum();
    let etl_gb: f64 = jobs.iter().filter(|j| j.spark_etl).map(|j| j.data_gb).sum();
    ShareReport {
        system_shares,
        spark_etl_data_fraction: etl_gb / total_gb,
        total_jobs: jobs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let cfg = WorkloadConfig::default();
        assert_eq!(generate_trace(&cfg), generate_trace(&cfg));
    }

    #[test]
    fn shares_converge_to_targets() {
        let cfg = WorkloadConfig {
            num_jobs: 50_000,
            ..WorkloadConfig::default()
        };
        let report = analyze(&generate_trace(&cfg));
        for (i, (system, share)) in report.system_shares.iter().enumerate() {
            assert!(
                (share - cfg.shares[i]).abs() < 0.01,
                "{}: {share} vs target {}",
                system.name(),
                cfg.shares[i]
            );
        }
        assert!(report.spark_etl_data_fraction > 0.75);
        assert_eq!(report.total_jobs, 50_000);
    }

    #[test]
    fn mllib_is_the_minority_as_in_figure1() {
        let report = analyze(&generate_trace(&WorkloadConfig::default()));
        let mllib_share = report
            .system_shares
            .iter()
            .find(|(s, _)| *s == MlSystem::MLlib)
            .map(|(_, share)| *share)
            .unwrap();
        for (s, share) in &report.system_shares {
            if *s != MlSystem::MLlib {
                assert!(*share > mllib_share, "{} should exceed MLlib", s.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_shares_panic() {
        let cfg = WorkloadConfig {
            shares: [0.5, 0.5, 0.5, 0.5],
            ..WorkloadConfig::default()
        };
        generate_trace(&cfg);
    }

    #[test]
    fn data_sizes_are_in_configured_range() {
        let jobs = generate_trace(&WorkloadConfig {
            num_jobs: 1000,
            ..WorkloadConfig::default()
        });
        for j in &jobs {
            assert!(j.data_gb >= 0.1 && j.data_gb <= 1000.0, "{}", j.data_gb);
        }
    }

    #[test]
    fn system_names() {
        assert_eq!(MlSystem::TensorFlow.name(), "TensorFlow");
        assert_eq!(MlSystem::ALL.len(), 4);
    }
}
