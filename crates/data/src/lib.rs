//! Datasets for the MLlib\* reproduction.
//!
//! Provides:
//!
//! * [`SparseDataset`] — an in-memory sparse classification dataset with
//!   the statistics reported in the paper's Table I.
//! * [`libsvm`] — reader/writer for the LIBSVM text format, so the real
//!   avazu/url/kddb/kdd12 datasets can be dropped in when available.
//! * [`SyntheticConfig`] — a seeded generator of sparse linear
//!   classification problems with power-law feature popularity, used to
//!   build scaled-down look-alikes of the paper's workloads.
//! * [`catalog`] — the five presets (`avazu_like`, `url_like`, `kddb_like`,
//!   `kdd12_like`, `wx_like`) with dimensions scaled ~1000× down from
//!   Table I while preserving the determined/underdetermined character of
//!   each dataset.
//! * [`Partitioner`] / [`BatchSampler`] — row partitioning across workers
//!   and seeded batch sampling.
//! * [`workload`] — the synthetic platform job trace behind the Figure 1
//!   workload-share table.
//!
//! # Example
//!
//! ```
//! use mlstar_data::{catalog, libsvm, Partitioner};
//!
//! // A scaled-down look-alike of the paper's kdd12 dataset…
//! let ds = catalog::kdd12_like().scaled_down(64).generate();
//! assert!(!ds.stats().underdetermined);
//! // …round-trippable through LIBSVM text…
//! let text = libsvm::write_string(&ds);
//! let back = libsvm::read_str(&text, ds.num_features()).unwrap();
//! assert_eq!(ds, back);
//! // …and partitionable across 8 simulated executors.
//! let parts = Partitioner::Shuffled { seed: 1 }.partition(ds.len(), 8);
//! assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), ds.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod catalog;
mod dataset;
mod error;
mod fingerprint;
pub mod libsvm;
mod multiclass;
mod partition;
mod synthetic;
pub mod workload;

pub use batch::{BatchSampler, EpochOrder, RowSampler};
pub use dataset::{DatasetStats, SparseDataset};
pub use error::DataError;
pub use fingerprint::DatasetFingerprint;
pub use multiclass::{MulticlassConfig, MulticlassDataset};
pub use partition::Partitioner;
pub use synthetic::SyntheticConfig;
