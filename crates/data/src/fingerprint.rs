//! Content fingerprints of datasets.

use mlstar_codec::Fnv1a;
use serde::{Deserialize, Serialize};

use crate::SparseDataset;

/// A fingerprint of a dataset: enough to refuse pairing a model or a
/// checkpoint with data of the wrong shape, and to tell two same-shape
/// datasets apart by content.
///
/// Used by both the serve-side artifact codec (a model must score the
/// feature space it was trained on) and the training checkpoint codec (a
/// resumed run must see bit-identical data or the replay is meaningless).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetFingerprint {
    /// Feature dimensionality the model expects.
    pub features: usize,
    /// Number of training examples.
    pub instances: usize,
    /// FNV-1a hash over the dataset's structure and content.
    pub content_hash: u64,
}

impl DatasetFingerprint {
    /// Fingerprints a dataset: dimensions plus an FNV-1a hash over every
    /// row's indices, values, and label (bit-exact, order-sensitive).
    pub fn of(ds: &SparseDataset) -> DatasetFingerprint {
        let mut h = Fnv1a::new();
        h.write_u64(ds.num_features() as u64);
        h.write_u64(ds.len() as u64);
        for (row, &label) in ds.rows().iter().zip(ds.labels().iter()) {
            h.write_u64(label.to_bits());
            h.write_u64(row.nnz() as u64);
            for (i, v) in row.iter() {
                h.write_u64(i as u64);
                h.write_u64(v.to_bits());
            }
        }
        DatasetFingerprint {
            features: ds.num_features(),
            instances: ds.len(),
            content_hash: h.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlstar_linalg::SparseVector;

    #[test]
    fn fingerprint_is_content_sensitive() {
        let mut a = SparseDataset::empty(4);
        a.push(SparseVector::from_pairs(4, &[(0, 1.0)]).unwrap(), 1.0);
        let b = a.clone();
        let fa = DatasetFingerprint::of(&a);
        assert_eq!(fa, DatasetFingerprint::of(&b), "same content, same print");
        let mut c = a.clone();
        c.push(SparseVector::from_pairs(4, &[(1, 2.0)]).unwrap(), -1.0);
        let fc = DatasetFingerprint::of(&c);
        assert_ne!(fa.content_hash, fc.content_hash);
        assert_eq!(fc.instances, 2);
        // A value change alone flips the hash.
        let mut d = SparseDataset::empty(4);
        d.push(
            SparseVector::from_pairs(4, &[(0, 1.0 + 1e-12)]).unwrap(),
            1.0,
        );
        assert_ne!(fa.content_hash, DatasetFingerprint::of(&d).content_hash);
    }
}
