//! Row partitioning across workers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A strategy for assigning dataset rows to `k` workers.
///
/// In Spark, partitioning is decided by the data source and any explicit
/// `repartition`; model-averaging convergence is sensitive to whether
/// partitions are i.i.d. samples of the data, so the shuffled strategy is
/// the default for the systems in `mlstar-core` (matching the paper's
/// footnote that data "need to be randomly shuffled and distributed").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partitioner {
    /// Contiguous blocks: worker `r` gets rows `[r·n/k, (r+1)·n/k)`.
    Contiguous,
    /// Round-robin: row `i` goes to worker `i mod k`.
    RoundRobin,
    /// Random shuffle with the given seed, then contiguous blocks.
    Shuffled {
        /// RNG seed for the shuffle.
        seed: u64,
    },
    /// Deliberately unbalanced: worker 0 receives `hot_fraction` of the
    /// (shuffled) rows, the rest are split evenly among the other workers.
    /// Used by the weighted-model-averaging ablation (Zhang & Jordan's
    /// "reweighting" refinement matters exactly when partitions are
    /// unequal).
    SkewedShuffled {
        /// RNG seed for the shuffle.
        seed: u64,
        /// Fraction of rows owned by worker 0, clamped to `[1/k, 0.95]`.
        hot_fraction: f64,
    },
}

impl Partitioner {
    /// Assigns row indices `[0, n)` to `k` partitions.
    ///
    /// Every index appears in exactly one partition; partition sizes differ
    /// by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn partition(&self, n: usize, k: usize) -> Vec<Vec<usize>> {
        assert!(k > 0, "cannot partition rows across zero workers");
        match self {
            Partitioner::Contiguous => mlstar_linalg::partition_ranges(n, k)
                .into_iter()
                .map(|r| r.collect())
                .collect(),
            Partitioner::RoundRobin => {
                let mut parts = vec![Vec::with_capacity(n / k + 1); k];
                for i in 0..n {
                    parts[i % k].push(i);
                }
                parts
            }
            Partitioner::Shuffled { seed } => {
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = StdRng::seed_from_u64(*seed);
                order.shuffle(&mut rng);
                let ranges = mlstar_linalg::partition_ranges(n, k);
                ranges.into_iter().map(|r| order[r].to_vec()).collect()
            }
            Partitioner::SkewedShuffled { seed, hot_fraction } => {
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = StdRng::seed_from_u64(*seed);
                order.shuffle(&mut rng);
                if k == 1 {
                    return vec![order];
                }
                let lo = 1.0 / k as f64;
                let frac = hot_fraction.clamp(lo, 0.95);
                let hot = ((n as f64 * frac).round() as usize).min(n);
                let mut parts = Vec::with_capacity(k);
                parts.push(order[..hot].to_vec());
                let ranges = mlstar_linalg::partition_ranges(n - hot, k - 1);
                for r in ranges {
                    parts.push(order[hot + r.start..hot + r.end].to_vec());
                }
                parts
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_exact_cover(parts: &[Vec<usize>], n: usize) {
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..n).collect();
        assert_eq!(all, expected);
    }

    fn assert_balanced(parts: &[Vec<usize>]) {
        let min = parts.iter().map(Vec::len).min().unwrap();
        let max = parts.iter().map(Vec::len).max().unwrap();
        assert!(max - min <= 1, "sizes {min}..{max}");
    }

    #[test]
    fn contiguous_blocks() {
        let parts = Partitioner::Contiguous.partition(10, 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[2], vec![7, 8, 9]);
        assert_exact_cover(&parts, 10);
        assert_balanced(&parts);
    }

    #[test]
    fn round_robin_interleaves() {
        let parts = Partitioner::RoundRobin.partition(7, 3);
        assert_eq!(parts[0], vec![0, 3, 6]);
        assert_eq!(parts[1], vec![1, 4]);
        assert_exact_cover(&parts, 7);
        assert_balanced(&parts);
    }

    #[test]
    fn shuffled_covers_and_is_deterministic() {
        let a = Partitioner::Shuffled { seed: 5 }.partition(100, 4);
        let b = Partitioner::Shuffled { seed: 5 }.partition(100, 4);
        assert_eq!(a, b);
        assert_exact_cover(&a, 100);
        assert_balanced(&a);
        let c = Partitioner::Shuffled { seed: 6 }.partition(100, 4);
        assert_ne!(a, c);
        // Shuffle must actually shuffle.
        assert_ne!(a, Partitioner::Contiguous.partition(100, 4));
    }

    #[test]
    fn more_workers_than_rows_yields_empty_partitions() {
        let parts = Partitioner::Contiguous.partition(2, 5);
        assert_eq!(parts.len(), 5);
        assert_exact_cover(&parts, 2);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 3);
    }

    #[test]
    fn skewed_gives_worker_zero_the_hot_share() {
        let parts = Partitioner::SkewedShuffled {
            seed: 3,
            hot_fraction: 0.5,
        }
        .partition(100, 5);
        assert_exact_cover(&parts, 100);
        assert_eq!(parts[0].len(), 50);
        for p in &parts[1..] {
            assert!(p.len() >= 12 && p.len() <= 13, "{}", p.len());
        }
        // Clamping: a fraction below 1/k degrades to balanced-ish.
        let parts = Partitioner::SkewedShuffled {
            seed: 3,
            hot_fraction: 0.0,
        }
        .partition(100, 4);
        assert_exact_cover(&parts, 100);
        assert_eq!(parts[0].len(), 25);
    }

    #[test]
    fn skewed_single_worker_ignores_hot_fraction() {
        // k = 1 takes the early-return path: one partition, the full
        // shuffle, no clamping arithmetic (1/k = 1.0 would exceed the 0.95
        // clamp ceiling and must not panic or drop rows).
        for hot_fraction in [0.0, 0.5, 0.95, 1.0, 7.3] {
            let parts = Partitioner::SkewedShuffled {
                seed: 11,
                hot_fraction,
            }
            .partition(9, 1);
            assert_eq!(parts.len(), 1);
            assert_exact_cover(&parts, 9);
        }
        // And it matches the plain shuffle of the same seed.
        let skewed = Partitioner::SkewedShuffled {
            seed: 11,
            hot_fraction: 0.5,
        }
        .partition(9, 1);
        let shuffled = Partitioner::Shuffled { seed: 11 }.partition(9, 1);
        assert_eq!(skewed, shuffled);
    }

    #[test]
    fn skewed_hot_fraction_clamps_at_both_bounds() {
        // Below the 1/k floor: clamps up to an even share for worker 0.
        for low in [-1.0, 0.0, 0.1] {
            let parts = Partitioner::SkewedShuffled {
                seed: 4,
                hot_fraction: low,
            }
            .partition(100, 4);
            assert_exact_cover(&parts, 100);
            assert_eq!(parts[0].len(), 25, "floor clamp for {low}");
        }
        // Exactly at the floor is untouched.
        let parts = Partitioner::SkewedShuffled {
            seed: 4,
            hot_fraction: 0.25,
        }
        .partition(100, 4);
        assert_eq!(parts[0].len(), 25);
        // At and beyond the 0.95 ceiling: worker 0 gets 95%, the others
        // still cover the remainder without losing a row.
        for high in [0.95, 0.99, 1.0, 100.0] {
            let parts = Partitioner::SkewedShuffled {
                seed: 4,
                hot_fraction: high,
            }
            .partition(100, 4);
            assert_exact_cover(&parts, 100);
            assert_eq!(parts[0].len(), 95, "ceiling clamp for {high}");
            assert_eq!(parts.len(), 4);
            for p in &parts[1..] {
                assert!(p.len() <= 2, "cold partitions share 5 rows");
            }
        }
    }

    #[test]
    fn skewed_tiny_datasets_keep_exact_cover() {
        // Fewer rows than workers with an extreme hot share: cover must
        // stay exact even when the hot set rounds to all available rows.
        for n in [1, 2, 3, 5] {
            for k in [2, 3, 5] {
                let parts = Partitioner::SkewedShuffled {
                    seed: 8,
                    hot_fraction: 0.95,
                }
                .partition(n, k);
                assert_eq!(parts.len(), k);
                assert_exact_cover(&parts, n);
            }
        }
    }

    #[test]
    fn single_worker_gets_everything() {
        for p in [
            Partitioner::Contiguous,
            Partitioner::RoundRobin,
            Partitioner::Shuffled { seed: 0 },
            Partitioner::SkewedShuffled {
                seed: 0,
                hot_fraction: 0.7,
            },
        ] {
            let parts = p.partition(6, 1);
            assert_eq!(parts.len(), 1);
            assert_exact_cover(&parts, 6);
        }
    }
}
