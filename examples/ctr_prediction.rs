//! Click-through-rate prediction: the avazu workload from the paper's
//! evaluation, scaled down, trained with logistic regression.
//!
//! Compares MLlib (SendGradient) against MLlib* (model averaging +
//! AllReduce) head to head — the paper's Figure 4(a/b) scenario — and
//! reports classification quality.
//!
//! ```sh
//! cargo run --release --example ctr_prediction
//! ```

use mllib_star::core::{train_mllib, train_mllib_star, TrainConfig};
use mllib_star::data::catalog;
use mllib_star::glm::{BinaryConfusion, LearningRate, Loss, Regularizer};
use mllib_star::sim::ClusterSpec;

fn main() {
    // The avazu-like preset, scaled 8× further down so the example runs in
    // seconds even in debug builds.
    let dataset = catalog::avazu_like().scaled_down(8).generate();
    println!(
        "CTR dataset (avazu-like): {} impressions × {} one-hot features",
        dataset.len(),
        dataset.num_features()
    );

    let cluster = ClusterSpec::cluster1();
    let reg = Regularizer::l2(0.01);

    let mllib_cfg = TrainConfig {
        loss: Loss::Logistic,
        reg,
        lr: LearningRate::Constant(2.0),
        batch_frac: 0.01,
        max_rounds: 300,
        eval_every: 25,
        ..TrainConfig::default()
    };
    let star_cfg = TrainConfig {
        loss: Loss::Logistic,
        reg,
        lr: LearningRate::Constant(0.05),
        max_rounds: 10,
        ..TrainConfig::default()
    };

    let mllib = train_mllib(&dataset, &cluster, &mllib_cfg);
    let star = train_mllib_star(&dataset, &cluster, &star_cfg);

    println!("\n                      MLlib      MLlib*");
    println!(
        "final objective:     {:>7.4}    {:>7.4}",
        mllib.trace.final_objective().unwrap(),
        star.trace.final_objective().unwrap()
    );
    println!(
        "simulated time:      {:>6.2}s    {:>6.2}s",
        mllib.trace.points.last().unwrap().time.as_secs_f64(),
        star.trace.points.last().unwrap().time.as_secs_f64()
    );
    println!(
        "model updates:       {:>7}    {:>7}",
        mllib.total_updates, star.total_updates
    );

    let c = BinaryConfusion::evaluate(star.model.weights(), dataset.rows(), dataset.labels());
    println!("\nMLlib* classifier quality (training set):");
    println!("  accuracy  {:.1}%", c.accuracy() * 100.0);
    println!("  precision {:.1}%", c.precision() * 100.0);
    println!("  recall    {:.1}%", c.recall() * 100.0);
    println!("  F1        {:.3}", c.f1());

    // Score a fresh impression.
    let example = &dataset.rows()[0];
    println!(
        "\nP(click) for the first impression: {:.3}",
        star.model.predict_probability(example)
    );
}
