//! Out-of-core training: stream a LIBSVM file in chunks and train
//! incrementally — the workflow for datasets that do not fit in memory
//! (the paper's WX is 434 GB).
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use mllib_star::data::{libsvm, libsvm::ChunkedReader, SyntheticConfig};
use mllib_star::glm::{objective_value, sgd_epoch_lazy, LearningRate, Loss, Regularizer};
use mllib_star::linalg::ScaledVector;

fn main() {
    // Materialize a "big" file on disk (stand-in for a dataset that would
    // not fit in memory).
    let dataset = SyntheticConfig::small("out-of-core", 20_000, 2_000).generate();
    let dir = std::env::temp_dir().join("mlstar_out_of_core");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("big.libsvm");
    std::fs::write(&path, libsvm::write_string(&dataset)).expect("write file");
    let dim = dataset.num_features();
    println!(
        "wrote {} ({} rows, {} features)",
        path.display(),
        dataset.len(),
        dim
    );

    // Stream it back 2,000 rows at a time, folding each chunk into the
    // model with lazy-L2 SGD. Only one chunk is in memory at a time.
    let loss = Loss::Logistic;
    let reg = Regularizer::l2(0.001);
    let lr = LearningRate::InvSqrt(0.5);
    let mut w = ScaledVector::zeros(dim);
    let mut t = 0u64;
    let mut chunk_count = 0usize;
    let file = std::fs::File::open(&path).expect("reopen file");
    for chunk in ChunkedReader::new(std::io::BufReader::new(file), dim, 2_000) {
        let chunk = chunk.expect("valid chunk");
        let order: Vec<usize> = (0..chunk.len()).collect();
        t = sgd_epoch_lazy(
            loss,
            reg,
            &mut w,
            chunk.rows(),
            chunk.labels(),
            &order,
            lr,
            t,
        );
        chunk_count += 1;
        let f = objective_value(loss, reg, &w.to_dense(), chunk.rows(), chunk.labels());
        println!(
            "chunk {chunk_count:>2}: {} rows | chunk objective {f:.4}",
            chunk.len()
        );
    }

    let final_f = objective_value(loss, reg, &w.to_dense(), dataset.rows(), dataset.labels());
    println!("\nfull-dataset objective after one streamed pass: {final_f:.4}");
    println!("({t} updates across {chunk_count} chunks, peak memory = one chunk)");
    std::fs::remove_file(&path).ok();
}
