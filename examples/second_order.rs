//! Second-order training: sequential L-BFGS and the `spark.ml`-style
//! distributed L-BFGS plan — the paper's future-work question.
//!
//! ```sh
//! cargo run --release --example second_order
//! ```

use mllib_star::core::{train_mllib_star, train_sparkml_lbfgs, SparkMlConfig, TrainConfig};
use mllib_star::data::SyntheticConfig;
use mllib_star::glm::{Lbfgs, LbfgsConfig, LearningRate, Loss, Regularizer};
use mllib_star::sim::ClusterSpec;

fn main() {
    let dataset = SyntheticConfig::small("second-order", 4_000, 400).generate();
    let reg = Regularizer::l2(0.01);

    // 1. Sequential L-BFGS: the optimizer itself.
    let lbfgs = Lbfgs::new(LbfgsConfig {
        loss: Loss::Logistic,
        reg,
        max_iters: 50,
        ..LbfgsConfig::default()
    });
    let seq = lbfgs.run(dataset.num_features(), dataset.rows(), dataset.labels());
    println!(
        "sequential L-BFGS: {} iterations, {} data passes, objective {:.4}",
        seq.iterations, seq.evaluations, seq.final_objective
    );

    // 2. The spark.ml plan on a simulated cluster: every gradient and every
    //    line-search trial costs a broadcast + treeAggregate round.
    let cluster = ClusterSpec::cluster1();
    let cfg = TrainConfig {
        loss: Loss::Logistic,
        reg,
        max_rounds: 30,
        ..TrainConfig::default()
    };
    let dist = train_sparkml_lbfgs(&dataset, &cluster, &cfg, &SparkMlConfig::default());
    println!(
        "spark.ml(L-BFGS):  {} outer iterations, objective {:.4}, {:.2}s simulated",
        dist.rounds_run,
        dist.trace.final_objective().unwrap(),
        dist.trace.points.last().unwrap().time.as_secs_f64()
    );

    // 3. MLlib* for comparison: first-order but thousands of cheap updates
    //    per round.
    let star = train_mllib_star(
        &dataset,
        &cluster,
        &TrainConfig {
            loss: Loss::Logistic,
            reg,
            lr: LearningRate::Constant(0.05),
            max_rounds: 10,
            ..TrainConfig::default()
        },
    );
    println!(
        "MLlib*:            {} rounds, objective {:.4}, {:.2}s simulated",
        star.rounds_run,
        star.trace.final_objective().unwrap(),
        star.trace.points.last().unwrap().time.as_secs_f64()
    );

    println!("\nL-BFGS needs few iterations but pays full data passes and");
    println!("line-search rounds through the driver; MLlib* amortizes one");
    println!("communication per local epoch of SGD — the trade-off the");
    println!("paper's conclusion poses for spark.ml.");
}
