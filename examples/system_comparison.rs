//! Head-to-head system comparison via the `Comparison` API — the paper's
//! evaluation protocol (common target = best objective + 0.01, speedups
//! vs. a baseline) as three library calls.
//!
//! ```sh
//! cargo run --release --example system_comparison
//! ```

use mllib_star::core::{Comparison, System, TrainConfig};
use mllib_star::data::catalog;
use mllib_star::glm::{LearningRate, Regularizer};
use mllib_star::sim::ClusterSpec;

fn main() {
    let dataset = catalog::avazu_like().scaled_down(4).generate();
    let cluster = ClusterSpec::cluster1();
    println!(
        "workload: avazu-like/4 ({} examples × {} features), 8 executors\n",
        dataset.len(),
        dataset.num_features()
    );

    let reg = Regularizer::None;
    let mllib = TrainConfig {
        reg,
        lr: LearningRate::Constant(4.0),
        batch_frac: 0.01,
        max_rounds: 400,
        eval_every: 10,
        ..TrainConfig::default()
    };
    let sendmodel = TrainConfig {
        reg,
        lr: LearningRate::Constant(0.05),
        max_rounds: 15,
        ..TrainConfig::default()
    };
    let ps = TrainConfig {
        reg,
        lr: LearningRate::Constant(0.05),
        batch_frac: 0.05,
        max_rounds: 300,
        eval_every: 20,
        ..TrainConfig::default()
    };

    let (report, _outputs) = Comparison::new(&dataset, &cluster)
        .add(System::Mllib, mllib) // first entry = speedup baseline
        .add(System::MllibMa, sendmodel.clone())
        .add(System::MllibStar, sendmodel)
        .add(System::PetuumStar, ps)
        .run();

    print!("{report}");
    if let Some(w) = report.winner() {
        println!("\nwinner: {}", w.system);
    }
}
