//! Multiclass topic classification with one-vs-rest over MLlib* — the
//! reduction MLlib itself uses for multiclass linear models.
//!
//! ```sh
//! cargo run --release --example multiclass_topics
//! ```

use mllib_star::core::{OneVsRest, System, TrainConfig};
use mllib_star::data::MulticlassConfig;
use mllib_star::glm::{LearningRate, Loss, Regularizer};
use mllib_star::sim::ClusterSpec;

fn main() {
    // A 5-topic document classification look-alike: one-hot term features
    // with power-law popularity, labels from five planted topic scorers.
    let dataset = MulticlassConfig {
        name: "topics".into(),
        num_instances: 4_000,
        num_features: 1_000,
        num_classes: 5,
        avg_nnz: 25,
        feature_skew: 1.6,
        score_noise: 0.05,
        seed: 7,
    }
    .generate();
    println!(
        "documents: {} × {} term features, {} topics; class sizes {:?}",
        dataset.len(),
        dataset.num_features(),
        dataset.num_classes(),
        dataset.class_counts()
    );

    let cluster = ClusterSpec::cluster1();
    let trainer = OneVsRest::new(
        System::MllibStar,
        TrainConfig {
            loss: Loss::Hinge,
            reg: Regularizer::l2(0.001),
            lr: LearningRate::Constant(0.05),
            max_rounds: 10,
            ..TrainConfig::default()
        },
    );
    let out = trainer.train(&dataset, &cluster);

    println!("\nper-topic binary runs:");
    let mut total_time = 0.0;
    for (class, run) in out.per_class.iter().enumerate() {
        let t = run.trace.points.last().unwrap().time.as_secs_f64();
        total_time += t;
        println!(
            "  topic {class}: objective {:.4} in {} rounds ({t:.2}s simulated)",
            run.trace.final_objective().unwrap(),
            run.rounds_run
        );
    }
    println!(
        "\nmulticlass accuracy: {:.1}% ({} classes, chance {:.1}%)",
        out.model.accuracy(&dataset) * 100.0,
        out.model.num_classes(),
        100.0 / out.model.num_classes() as f64
    );
    println!("total simulated training time: {total_time:.2}s");

    // Classify one document.
    let doc = &dataset.rows()[3];
    println!(
        "\ndocument 3 → topic {} (margins {:?})",
        out.model.predict(doc),
        out.model
            .margins(doc)
            .iter()
            .map(|m| (m * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
