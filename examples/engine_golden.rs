//! Regenerates the golden fixtures for `tests/engine_equivalence.rs`.
//!
//! Trains every system in [`System::ALL`] on a small synthetic workload at
//! two seeds and prints a line-oriented fixture capturing the convergence
//! trace (times in integer nanoseconds, objectives as exact `f64` bit
//! patterns), the final model norm, the Gantt makespan, and the run
//! counters. The equivalence tests parse this file and require the current
//! trainers to reproduce it bit for bit.
//!
//! ```text
//! cargo run --release --example engine_golden > tests/fixtures/golden_traces.txt
//! ```
//!
//! The fixtures checked in under `tests/fixtures/` were captured from the
//! pre-round-engine trainers, so they pin the refactored engine to the
//! original per-trainer implementations.

use mllib_star::core::{System, TrainConfig};
use mllib_star::data::SyntheticConfig;
use mllib_star::glm::{LearningRate, Loss, Regularizer};
use mllib_star::sim::ClusterSpec;

/// The seeds at which every system is captured.
pub const SEEDS: [u64; 2] = [42, 7];

/// The fixture workload: small enough to run in milliseconds, large enough
/// that every executor holds a non-trivial partition.
pub fn golden_dataset() -> mllib_star::data::SparseDataset {
    let mut gen = SyntheticConfig::small("golden", 240, 30);
    gen.margin_noise = 0.05;
    gen.flip_prob = 0.0;
    gen.generate()
}

/// The fixture configuration. `eval_every = 2` exercises trace thinning and
/// `failure_prob` exercises the failure-injection path (and thereby the
/// failure RNG stream) in the MLlib-family trainers.
pub fn golden_config(seed: u64) -> TrainConfig {
    TrainConfig {
        loss: Loss::Hinge,
        reg: Regularizer::None,
        lr: LearningRate::Constant(0.05),
        batch_frac: 0.2,
        max_rounds: 6,
        eval_every: 2,
        failure_prob: 0.15,
        seed,
        ..TrainConfig::default()
    }
}

fn main() {
    let ds = golden_dataset();
    let cluster = ClusterSpec::cluster1();
    println!("# golden fixtures: system runs captured pre-refactor");
    println!("# format: run <system> <seed> / point <step> <ns> <obj_bits> <updates>");
    println!("#         final <model_norm_bits> <makespan_ns> <rounds_run> <total_updates>");
    for system in System::ALL {
        for seed in SEEDS {
            let cfg = golden_config(seed);
            let out = system.train_default(&ds, &cluster, &cfg);
            println!("run {system} {seed}");
            for p in &out.trace.points {
                println!(
                    "point {} {} {:016x} {}",
                    p.step,
                    p.time.as_nanos(),
                    p.objective.to_bits(),
                    p.total_updates
                );
            }
            println!(
                "final {:016x} {} {} {}",
                out.model.weights().norm2().to_bits(),
                out.gantt.makespan().as_nanos(),
                out.rounds_run,
                out.total_updates
            );
        }
    }
}
