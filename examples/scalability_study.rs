//! Scalability study: the paper's Figure 6 experiment in miniature — how
//! adding machines changes time-to-convergence on a heterogeneous cluster
//! (and why the answer is "less than you'd hope").
//!
//! ```sh
//! cargo run --release --example scalability_study
//! ```

use mllib_star::core::{train_mllib_star, TrainConfig};
use mllib_star::data::catalog;
use mllib_star::glm::{LearningRate, Loss, Regularizer};
use mllib_star::sim::{ClusterSpec, NodeId};

fn main() {
    let dataset = catalog::wx_like().scaled_down(8).generate();
    println!(
        "WX-like workload: {} examples × {} features\n",
        dataset.len(),
        dataset.num_features()
    );

    let cfg = TrainConfig {
        loss: Loss::Hinge,
        reg: Regularizer::None,
        lr: LearningRate::Constant(0.05),
        max_rounds: 8,
        eval_every: 8,
        ..TrainConfig::default()
    };

    println!("   k | sim time | speedup | mean executor utilization");
    let mut base_time = None;
    for k in [4usize, 8, 16, 32] {
        // Heterogeneous "Cluster 2": per-node speeds vary, lognormal
        // straggler tail — the reason BSP scaling stalls.
        let cluster = ClusterSpec::cluster2(k, 7);
        let out = train_mllib_star(&dataset, &cluster, &cfg);
        let t = out.trace.points.last().unwrap().time.as_secs_f64();
        let base = *base_time.get_or_insert(t);
        let util: f64 = (0..k)
            .map(|r| out.gantt.utilization(NodeId::Executor(r)))
            .sum::<f64>()
            / k as f64;
        println!(
            "{:>4} | {:>7.2}s | {:>6.2}× | {:.0}%",
            k,
            t,
            base / t,
            util * 100.0
        );
    }

    println!("\nDoubling machines halves per-node compute but grows the");
    println!("shuffle cost and the straggler tail — the paper's Figure 6(d)");
    println!("finds only 1.5–1.7× going from 32 to 128 machines.");
}
