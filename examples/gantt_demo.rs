//! Gantt-chart demo: visualize where each system spends its time — the
//! paper's Figure 3 methodology on a small problem.
//!
//! ```sh
//! cargo run --release --example gantt_demo
//! ```

use mllib_star::core::{System, TrainConfig};
use mllib_star::data::SyntheticConfig;
use mllib_star::glm::LearningRate;
use mllib_star::sim::{ClusterSpec, NodeId, SimDuration, SimTime};

fn main() {
    let dataset = SyntheticConfig::small("gantt-demo", 4_000, 2_000).generate();
    let cluster = ClusterSpec::cluster1();
    let cfg = TrainConfig {
        lr: LearningRate::Constant(0.02),
        batch_frac: 0.05,
        max_rounds: 4,
        eval_every: 4,
        ..TrainConfig::default()
    };

    for system in [
        System::Mllib,
        System::MllibMa,
        System::MllibStar,
        System::PetuumStar,
    ] {
        let out = system.train_default(&dataset, &cluster, &cfg);
        let horizon = out
            .gantt
            .makespan()
            .max(SimTime::ZERO + SimDuration::from_millis(1));
        println!("=== {} ===", system.name());
        print!("{}", out.gantt.render_text(84, horizon));
        println!(
            "driver busy {:.0}% | makespan {:.3}s\n",
            out.gantt.utilization(NodeId::Driver).max(0.0) * 100.0,
            horizon.as_secs_f64()
        );
    }
    println!("legend: C compute  B broadcast  g send-gradient  m send-model");
    println!("        T tree-aggregate  U driver-update  R reduce-scatter");
    println!("        A all-gather  p ps-push  q ps-pull  S server-update  . wait");
}
