//! Quickstart: train a linear SVM with MLlib* on a simulated 8-node
//! cluster, in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mllib_star::core::{train_mllib_star, TrainConfig};
use mllib_star::data::SyntheticConfig;
use mllib_star::glm::{accuracy, LearningRate, Loss, Regularizer};
use mllib_star::sim::ClusterSpec;

fn main() {
    // 1. A sparse binary-classification dataset (or load LIBSVM data with
    //    `mllib_star::data::libsvm::read_file`).
    let dataset = SyntheticConfig::small("quickstart", 5_000, 500).generate();
    println!(
        "dataset: {} examples × {} features ({} nonzeros)",
        dataset.len(),
        dataset.num_features(),
        dataset.total_nnz()
    );

    // 2. A simulated cluster — Cluster 1 of the paper: 8 executors, 1 Gbps.
    let cluster = ClusterSpec::cluster1();

    // 3. Train with MLlib*: model averaging + AllReduce.
    let config = TrainConfig {
        loss: Loss::Hinge,
        reg: Regularizer::l2(0.01),
        lr: LearningRate::Constant(0.05),
        max_rounds: 10,
        ..TrainConfig::default()
    };
    let output = train_mllib_star(&dataset, &cluster, &config);

    // 4. Inspect the convergence trace (objective vs. step and simulated
    //    time — the axes of the paper's figures).
    println!("\n step | sim time | objective");
    for p in &output.trace.points {
        println!(
            "{:>5} | {:>7.3}s | {:.4}",
            p.step,
            p.time.as_secs_f64(),
            p.objective
        );
    }

    let acc = accuracy(output.model.weights(), dataset.rows(), dataset.labels());
    println!("\ntraining accuracy: {:.1}%", acc * 100.0);
    println!(
        "total model updates: {} across {} communication steps",
        output.total_updates, output.rounds_run
    );
}
