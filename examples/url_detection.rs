//! Malicious-URL detection: the url workload from the paper — an
//! *underdetermined* problem (more features than examples) where the
//! paper's regularization contrast is starkest.
//!
//! Demonstrates the paper's grid-search tuning protocol via
//! `mllib_star::core::GridSearch`, and how L2 regularization changes the
//! optimum on underdetermined data.
//!
//! ```sh
//! cargo run --release --example url_detection
//! ```

use mllib_star::core::{train_mllib_star, GridSearch, TrainConfig};
use mllib_star::data::catalog;
use mllib_star::glm::{Loss, Regularizer};
use mllib_star::sim::ClusterSpec;

fn main() {
    let dataset = catalog::url_like().scaled_down(2).generate();
    let stats = dataset.stats();
    println!(
        "URL dataset: {} URLs × {} features — {}",
        stats.instances,
        stats.features,
        if stats.underdetermined {
            "underdetermined (d > n)"
        } else {
            "determined"
        }
    );

    let cluster = ClusterSpec::cluster1();

    for reg in [Regularizer::None, Regularizer::L2 { lambda: 0.1 }] {
        let base = TrainConfig {
            loss: Loss::Hinge,
            reg,
            max_rounds: 15,
            ..TrainConfig::default()
        };
        // The paper: "we tune the hyper-parameters by grid search".
        let grid = GridSearch {
            etas: vec![0.005, 0.02, 0.1],
            batch_fracs: vec![1.0],
            stalenesses: vec![0],
            lambdas: vec![reg.lambda()],
        };
        let result = grid.run(&base, 0.0, |cfg, _| {
            train_mllib_star(&dataset, &cluster, cfg)
        });
        let out = &result.best_output;
        println!(
            "\n{}: best η = {} ({} combinations tried)",
            reg.label(),
            result.best_point.eta,
            result.evaluated
        );
        println!(
            "  objective {:.4} → {:.4} in {} rounds ({:.2}s simulated)",
            out.trace.points.first().unwrap().objective,
            out.trace.final_objective().unwrap(),
            out.rounds_run,
            out.trace.points.last().unwrap().time.as_secs_f64()
        );
        println!(
            "  model norm ‖w‖₂ = {:.2}, nonzero weights: {}",
            out.model.weights().norm2(),
            out.model.weights().count_nonzero()
        );
    }

    println!("\nNote how L2 shrinks the model on underdetermined data — the");
    println!("mechanism behind the paper's Figure 4(c/d) contrast.");
}
